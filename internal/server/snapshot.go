package server

import (
	"context"
	"fmt"

	"netupdate/internal/config"
	"netupdate/internal/core"
)

// SnapshotTenant serializes one tenant's warm state to the portable
// session-snapshot format (see internal/core/snapshot.go): Kripke
// transition relations, interned labels, learned caches, and the current
// configuration. The snapshot is taken under the tenant's gate, so it is
// a consistent point between syntheses; an evicted tenant is warmed
// first (by restore when its eviction snapshot is held, cold otherwise).
// This is the export half of tenant migration: the bytes returned here
// restore byte-identically on any replica registered with the same spec.
func (p *Pool) SnapshotTenant(ctx context.Context, id string) ([]byte, error) {
	t, err := p.admit(id)
	if err != nil {
		return nil, err
	}
	defer p.inflight.Done()
	defer t.pending.Add(-1)

	select {
	case t.gate <- struct{}{}:
	case <-ctx.Done():
		return nil, p.expireErr(ctx, t)
	}
	defer func() { <-t.gate }()

	sess, err := p.ensureWarm(t)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %s: session rebuild: %w", t.id, err)
	}
	img, err := sess.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("server: tenant %s: snapshot: %w", t.id, err)
	}
	return img, nil
}

// InstallSnapshot replaces a registered tenant's warm state with a
// session restored from a portable snapshot — the import half of tenant
// migration, and the restart path behind the daemon's -snapshot-dir. The
// snapshot must have been taken from a session with the same topology,
// classes, and engine options (the embedded context fingerprint is
// checked); the tenant's current configuration is realigned to the
// snapshot's. Rejected images (core.ErrBadSnapshot and friends) leave
// the tenant untouched.
func (p *Pool) InstallSnapshot(ctx context.Context, id string, img []byte) error {
	t, err := p.admit(id)
	if err != nil {
		return err
	}
	defer p.inflight.Done()
	defer t.pending.Add(-1)

	select {
	case t.gate <- struct{}{}:
	case <-ctx.Done():
		return p.expireErr(ctx, t)
	}
	defer func() { <-t.gate }()

	res := p.arenas.get(t.arenaFP, t.base.Topo)
	sess, err := core.RestoreSessionWith(t.base.Topo, t.base.Specs, t.opts, img, res)
	if err != nil {
		return fmt.Errorf("server: tenant %s: install snapshot: %w", t.id, err)
	}
	p.attachLearning(t, sess, true)
	t.builds.Add(1)
	t.snapRestores.Add(1)
	p.m.snapshotRestores.Add(1)

	p.mu.Lock()
	t.cur = sess.Current()
	t.snap = nil
	if t.elem != nil {
		p.lru.MoveToFront(t.elem)
	} else {
		t.elem = p.lru.PushFront(t)
	}
	t.sess = sess
	p.evictLocked()
	p.mu.Unlock()
	return nil
}

// TenantIDs lists the registered tenant ids.
func (p *Pool) TenantIDs() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	ids := make([]string, 0, len(p.tenants))
	for id := range p.tenants {
		ids = append(ids, id)
	}
	return ids
}

// TenantSpecOf returns the registration document a tenant was created
// from; migration re-registers it on the receiving replica before
// installing the snapshot.
func (p *Pool) TenantSpecOf(id string) (*TenantSpec, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.tenants[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTenant, id)
	}
	return t.spec, nil
}

// SnapshotAll captures a snapshot per tenant, best effort: warm idle
// tenants are serialized live, evicted tenants contribute their stored
// eviction snapshot, and tenants busy mid-synthesis (or failing to
// serialize) are skipped. The daemon uses this on drain to persist warm
// state under -snapshot-dir.
func (p *Pool) SnapshotAll() map[string][]byte {
	p.mu.Lock()
	type item struct {
		t    *tenant
		snap []byte
	}
	items := make([]item, 0, len(p.tenants))
	for _, t := range p.tenants {
		items = append(items, item{t: t, snap: t.snap})
	}
	p.mu.Unlock()

	out := map[string][]byte{}
	for _, it := range items {
		if it.snap != nil {
			out[it.t.id] = it.snap
			continue
		}
		select {
		case it.t.gate <- struct{}{}:
			p.mu.Lock()
			sess := it.t.sess
			p.mu.Unlock()
			if sess != nil {
				if img, err := sess.Snapshot(); err == nil {
					out[it.t.id] = img
				}
			}
			<-it.t.gate
		default:
		}
	}
	return out
}

// ConfigOf returns a tenant's current configuration (for tests and
// debugging endpoints; the pool mutex snapshot is consistent because cur
// only advances under the tenant gate).
func (p *Pool) ConfigOf(id string) (*config.Config, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.tenants[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTenant, id)
	}
	return t.cur, nil
}
