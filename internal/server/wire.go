package server

import (
	"errors"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/obs"
)

// The JSONL wire format shared by the daemon's synthesize endpoint and
// the netupdate -stream CLI: one Result line per requested delta or
// plan-step acknowledgement.

// StepAck is a plan-execution acknowledgement posted into the synthesize
// stream. A commit ack (Failed false) reports that the plan update at
// index Step (a Result.DAG node) committed in the network; it is
// bookkeeping only and is answered with an "acked" line. A failure
// report (Failed true) says the plan stalled — a switch died or installs
// timed out — with exactly the updates in Committed applied; the pool
// repairs the tenant's session from that state (core.Session.Repair) and
// answers with a "repair" plan line from it to the stranded target.
type StepAck struct {
	Step   int  `json:"step,omitempty"`
	Failed bool `json:"failed,omitempty"`
	// Committed lists every plan update index that committed before the
	// stall (must be dependency-closed under the plan DAG).
	Committed []int `json:"committed,omitempty"`
}

// streamRequest is one synthesize-stream input line: either a reroute
// delta (the common case) or a plan-step ack.
type streamRequest struct {
	config.StreamDelta
	Ack *StepAck `json:"ack,omitempty"`
}

// Result is one output line.
type Result struct {
	// Seq is the 1-based request ordinal within the stream or request
	// body.
	Seq    int    `json:"seq"`
	Tenant string `json:"tenant,omitempty"`
	// Result is "plan", "impossible" (no correct ordering exists at this
	// granularity), "acked" (a commit ack was recorded), "repair" (a
	// failure ack was answered with a resynthesized plan), or "error".
	Result string       `json:"result"`
	Steps  []ResultStep `json:"steps,omitempty"`
	Error  string       `json:"error,omitempty"`
	// Retryable marks transient load-shedding errors (queue full,
	// deadline expired): the identical request may be retried.
	Retryable bool `json:"retryable,omitempty"`
	// Line is the input line of a decode or validation failure (JSONL
	// position in the stream or request body).
	Line  int          `json:"line,omitempty"`
	Stats *ResultStats `json:"stats,omitempty"`
	// Trace is the run's exported span tree, present when the request
	// asked for tracing (?trace=1 or a tenant registered with
	// options.trace). Its root span carries the request id.
	Trace *obs.TraceData `json:"trace,omitempty"`
	// DAG is the dependency-DAG form of the plan: one node per non-wait
	// step of Steps, predecessor edges by node index, drain-marked edges
	// listed separately. Clients may execute the plan decentralized from
	// it — any commit order respecting the edges (plus drain quiescence)
	// is trace-equivalent to the sequential Steps.
	DAG *ResultDAG `json:"dag,omitempty"`
}

// ResultDAG mirrors core.PlanDAG on the wire.
type ResultDAG struct {
	Preds [][]int `json:"preds"`
	Drain [][]int `json:"drain,omitempty"`
	Depth int     `json:"depth"`
	Width int     `json:"width"`
}

// ResultStep is one plan element. Switch is a pointer so switch 0 is
// emitted while wait barriers carry no switch at all.
type ResultStep struct {
	Op     string `json:"op"` // "update" | "wait" | "add" | "del"
	Switch *int   `json:"switch,omitempty"`
	Rule   string `json:"rule,omitempty"`
}

// ResultStats is the per-synthesis work summary.
type ResultStats struct {
	Units      int     `json:"units"`
	Components int     `json:"components"`
	Checks     int     `json:"checks"`
	ClassSkips int     `json:"classSkips"`
	Waits      int     `json:"waits"`
	DAGDepth   int     `json:"dagDepth,omitempty"`
	DAGWidth   int     `json:"dagWidth,omitempty"`
	ElapsedMS  float64 `json:"elapsedMs"`
	// Per-phase engine durations (subsets of ElapsedMS, not a partition):
	// rebind of warm structures, component search, wait removal, final
	// verification, and cache replay verification.
	RebindMS      float64 `json:"rebindMs,omitempty"`
	SearchMS      float64 `json:"searchMs,omitempty"`
	WaitRemovalMS float64 `json:"waitRemovalMs,omitempty"`
	VerifyMS      float64 `json:"verifyMs,omitempty"`
	CacheVerifyMS float64 `json:"cacheVerifyMs,omitempty"`
	// RequestID is the X-Netupdate-Request-Id the run executed under.
	RequestID string `json:"requestId,omitempty"`
	// CacheHit marks a plan served from the verification-first plan cache
	// (replayed through the tenant's warm checkers, no search run).
	CacheHit bool `json:"cacheHit,omitempty"`
}

// NewResult converts one Pool.Synthesize outcome into its wire line.
func NewResult(seq int, tenantID string, plan *core.Plan, err error) Result {
	res := Result{Seq: seq, Tenant: tenantID}
	switch {
	case err == nil:
		res.Result = "plan"
		for _, st := range plan.Steps {
			res.Steps = append(res.Steps, stepOf(st))
		}
		res.Stats = &ResultStats{
			Units:         plan.Stats.Units,
			Components:    plan.Stats.Components,
			Checks:        plan.Stats.Checks,
			ClassSkips:    plan.Stats.ClassSkips,
			Waits:         plan.Stats.WaitsAfter,
			DAGDepth:      plan.Stats.DAGDepth,
			DAGWidth:      plan.Stats.DAGWidth,
			ElapsedMS:     wireMS(plan.Stats.Elapsed),
			RebindMS:      wireMS(plan.Stats.RebindElapsed),
			SearchMS:      wireMS(plan.Stats.SearchElapsed),
			WaitRemovalMS: wireMS(plan.Stats.WaitRemovalElapsed),
			VerifyMS:      wireMS(plan.Stats.VerifyElapsed),
			CacheVerifyMS: wireMS(plan.Stats.CacheVerifyElapsed),
			RequestID:     plan.Stats.RequestID,
			CacheHit:      plan.Stats.CacheHit,
		}
		res.Trace = plan.Trace
		if d := plan.DAG; d != nil {
			res.DAG = &ResultDAG{
				Preds: edgeLists(d.Preds), Drain: edgeLists(d.Drain),
				Depth: d.Depth, Width: d.Width,
			}
		}
	case errors.Is(err, core.ErrNoOrdering):
		res.Result = "impossible"
	default:
		res.Result = "error"
		res.Error = err.Error()
		res.Retryable = Retryable(err)
	}
	return res
}

// NewAckResult converts one Pool.Ack outcome into its wire line: commit
// acks answer "acked", failure reports answer with the repair plan.
func NewAckResult(seq int, tenantID string, plan *core.Plan, err error) Result {
	if err == nil && plan == nil {
		return Result{Seq: seq, Tenant: tenantID, Result: "acked"}
	}
	res := NewResult(seq, tenantID, plan, err)
	if err == nil {
		res.Result = "repair"
	}
	return res
}

// wireMS renders a duration as milliseconds with microsecond precision.
func wireMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// edgeLists copies per-node edge lists, replacing nil entries with empty
// slices so roots encode as [] rather than null on the wire.
func edgeLists(in [][]int) [][]int {
	out := make([][]int, len(in))
	for i, es := range in {
		if es == nil {
			es = []int{}
		}
		out[i] = es
	}
	return out
}

func stepOf(s core.Step) ResultStep {
	if s.Wait {
		return ResultStep{Op: "wait"}
	}
	sw := s.Switch
	switch {
	case s.IsRule && s.RuleAdd:
		return ResultStep{Op: "add", Switch: &sw, Rule: s.Rule.String()}
	case s.IsRule:
		return ResultStep{Op: "del", Switch: &sw, Rule: s.Rule.String()}
	default:
		return ResultStep{Op: "update", Switch: &sw}
	}
}
