package server

import (
	"errors"

	"netupdate/internal/core"
)

// The JSONL wire format shared by the daemon's synthesize endpoint and
// the netupdate -stream CLI: one Result line per requested delta.

// Result is one output line.
type Result struct {
	// Seq is the 1-based request ordinal within the stream or request
	// body.
	Seq    int    `json:"seq"`
	Tenant string `json:"tenant,omitempty"`
	// Result is "plan", "impossible" (no correct ordering exists at this
	// granularity), or "error".
	Result string       `json:"result"`
	Steps  []ResultStep `json:"steps,omitempty"`
	Error  string       `json:"error,omitempty"`
	// Retryable marks transient load-shedding errors (queue full,
	// deadline expired): the identical request may be retried.
	Retryable bool `json:"retryable,omitempty"`
	// Line is the input line of a decode or validation failure (JSONL
	// position in the stream or request body).
	Line  int          `json:"line,omitempty"`
	Stats *ResultStats `json:"stats,omitempty"`
}

// ResultStep is one plan element. Switch is a pointer so switch 0 is
// emitted while wait barriers carry no switch at all.
type ResultStep struct {
	Op     string `json:"op"` // "update" | "wait" | "add" | "del"
	Switch *int   `json:"switch,omitempty"`
	Rule   string `json:"rule,omitempty"`
}

// ResultStats is the per-synthesis work summary.
type ResultStats struct {
	Units      int     `json:"units"`
	Components int     `json:"components"`
	Checks     int     `json:"checks"`
	ClassSkips int     `json:"classSkips"`
	Waits      int     `json:"waits"`
	ElapsedMS  float64 `json:"elapsedMs"`
}

// NewResult converts one Pool.Synthesize outcome into its wire line.
func NewResult(seq int, tenantID string, plan *core.Plan, err error) Result {
	res := Result{Seq: seq, Tenant: tenantID}
	switch {
	case err == nil:
		res.Result = "plan"
		for _, st := range plan.Steps {
			res.Steps = append(res.Steps, stepOf(st))
		}
		res.Stats = &ResultStats{
			Units:      plan.Stats.Units,
			Components: plan.Stats.Components,
			Checks:     plan.Stats.Checks,
			ClassSkips: plan.Stats.ClassSkips,
			Waits:      plan.Stats.WaitsAfter,
			ElapsedMS:  float64(plan.Stats.Elapsed.Microseconds()) / 1000,
		}
	case errors.Is(err, core.ErrNoOrdering):
		res.Result = "impossible"
	default:
		res.Result = "error"
		res.Error = err.Error()
		res.Retryable = Retryable(err)
	}
	return res
}

func stepOf(s core.Step) ResultStep {
	if s.Wait {
		return ResultStep{Op: "wait"}
	}
	sw := s.Switch
	switch {
	case s.IsRule && s.RuleAdd:
		return ResultStep{Op: "add", Switch: &sw, Rule: s.Rule.String()}
	case s.IsRule:
		return ResultStep{Op: "del", Switch: &sw, Rule: s.Rule.String()}
	default:
		return ResultStep{Op: "update", Switch: &sw}
	}
}
