package server

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultVirtualNodes is the per-replica point count on the hash ring
// when RingOptions leave it zero. More points smooth the key
// distribution; the cost is O(replicas x vnodes) memory and a marginally
// larger sort.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring over replica addresses: tenant ids map
// to replicas so that adding or removing one replica moves only ~1/N of
// the tenants, which is what keeps migration traffic proportional to the
// topology change rather than the fleet size. The router (cmd/netupdatelb)
// and the stream client (netupdate -connect with several URLs) build the
// same ring from the same replica list, so server-side and client-side
// sharding agree on placement without coordination. Ring is not
// concurrency-safe; callers hold their own lock.
type Ring struct {
	vnodes   int
	replicas map[string]bool
	points   []ringPoint // sorted by hash, ascending
}

type ringPoint struct {
	hash    uint64
	replica string
}

// NewRing builds an empty ring with the given points per replica (0
// means DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes, replicas: map[string]bool{}}
}

// ringHash is the ring's stable hash: the first 8 bytes of SHA-256, so
// independently-built rings (router and clients) place keys identically.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a replica's virtual nodes. Adding a present replica is a
// no-op.
func (r *Ring) Add(replica string) {
	if r.replicas[replica] {
		return
	}
	r.replicas[replica] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{
			hash:    ringHash(fmt.Sprintf("%s#%d", replica, i)),
			replica: replica,
		})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a replica's virtual nodes. Removing an absent replica
// is a no-op.
func (r *Ring) Remove(replica string) {
	if !r.replicas[replica] {
		return
	}
	delete(r.replicas, replica)
	kept := r.points[:0]
	for _, pt := range r.points {
		if pt.replica != replica {
			kept = append(kept, pt)
		}
	}
	r.points = kept
}

// Owner maps a key (a tenant id) to its replica: the first virtual node
// clockwise from the key's hash. The second return is false on an empty
// ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.points[i].replica, true
}

// Replicas lists the ring members in sorted order.
func (r *Ring) Replicas() []string {
	out := make([]string, 0, len(r.replicas))
	for rep := range r.replicas {
		out = append(out, rep)
	}
	sort.Strings(out)
	return out
}

// Size reports the member count.
func (r *Ring) Size() int { return len(r.replicas) }
