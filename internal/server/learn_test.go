package server_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"netupdate/internal/bench"
	"netupdate/internal/server"
)

// TestLearnFileRoundTrip: a pool's learned state survives a restart —
// SaveLearning on the warm pool, LoadLearning into a fresh one, and the
// very first lap of the identical traffic is served from the fast path.
func TestLearnFileRoundTrip(t *testing.T) {
	loads, err := bench.MakeFlappingLoads(2, 40, 3, server.OptionsSpec{}, 707)
	if err != nil {
		t.Fatal(err)
	}
	p1 := server.NewPool(server.PoolOptions{Workers: 2})
	if _, err := bench.RunLoad(context.Background(), p1, loads); err != nil {
		t.Fatal(err)
	}
	warm := p1.Stats()
	if warm.PlanCacheHits == 0 || warm.PlanCacheEntries == 0 {
		t.Fatalf("warm pool never hit its own cache: %+v", warm)
	}
	var buf bytes.Buffer
	if err := p1.SaveLearning(&buf); err != nil {
		t.Fatal(err)
	}
	if err := p1.Close(context.Background()); err != nil {
		t.Fatal(err)
	}

	p2 := server.NewPool(server.PoolOptions{Workers: 2})
	defer p2.Close(context.Background())
	if err := p2.LoadLearning(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if st := p2.Stats(); st.PlanCacheEntries != warm.PlanCacheEntries {
		t.Fatalf("restored %d entries, want %d", st.PlanCacheEntries, warm.PlanCacheEntries)
	}
	if _, err := bench.RunLoad(context.Background(), p2, loads); err != nil {
		t.Fatal(err)
	}
	st := p2.Stats()
	if st.PlanCacheMisses != 0 {
		t.Fatalf("restored pool missed %d times on identical traffic", st.PlanCacheMisses)
	}
	if st.PlanCacheHits == 0 || st.PlanCacheVerifyFailures != 0 {
		t.Fatalf("restored fast path dead: %+v", st)
	}

	// Corrupt and version-mismatched snapshots are rejected.
	if err := p2.LoadLearning(strings.NewReader("{")); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if err := p2.LoadLearning(strings.NewReader(`{"version":99,"stores":[]}`)); err == nil {
		t.Fatal("future version accepted")
	}
}

// TestCrossTenantLearning: tenants whose specs differ only by name share
// one learning store — the second tenant's first lap is served from the
// plans the first tenant synthesized.
func TestCrossTenantLearning(t *testing.T) {
	loads, err := bench.MakeFlappingLoads(1, 40, 2, server.OptionsSpec{}, 808)
	if err != nil {
		t.Fatal(err)
	}
	tl := loads[0]
	p := server.NewPool(server.PoolOptions{Workers: 2})
	defer p.Close(context.Background())

	run := func(name string) *server.TenantStats {
		t.Helper()
		spec := *tl.Spec
		spec.Name = name
		info, err := p.Register(&spec)
		if err != nil {
			t.Fatal(err)
		}
		for di := range tl.Deltas {
			if _, err := p.Synthesize(context.Background(), info.ID, &tl.Deltas[di]); err != nil {
				t.Fatalf("%s delta %d: %v", name, di, err)
			}
		}
		st, err := p.TenantStats(info.ID)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	first := run("region-a")
	if first.CacheMisses == 0 {
		t.Fatalf("first tenant found a warm cache: %+v", first)
	}
	second := run("region-b")
	if second.CacheMisses != 0 {
		t.Fatalf("second tenant missed %d times; learning not shared across names", second.CacheMisses)
	}
	if second.CacheHits != int64(len(tl.Deltas)) {
		t.Fatalf("second tenant hits = %d, want %d", second.CacheHits, len(tl.Deltas))
	}
	if st := p.Stats(); st.LearnStores != 1 {
		t.Fatalf("learn stores = %d, want 1 (shared)", st.LearnStores)
	}

	// An opted-out tenant never touches the shared store.
	spec := *tl.Spec
	spec.Name = "region-c"
	spec.Options.NoPlanCache = true
	info, err := p.Register(&spec)
	if err != nil {
		t.Fatal(err)
	}
	for di := range tl.Deltas {
		if _, err := p.Synthesize(context.Background(), info.ID, &tl.Deltas[di]); err != nil {
			t.Fatal(err)
		}
	}
	st, err := p.TenantStats(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 0 || st.CacheMisses != 0 {
		t.Fatalf("noPlanCache tenant touched the cache: %+v", st)
	}
}
