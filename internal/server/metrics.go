package server

import (
	"netupdate/internal/obs"
)

// poolMetrics are the pool's registry-backed serving instruments behind
// GET /metrics. Every family the hand-rolled writer used to emit keeps
// its exact name, help text, and type; the latency totals that were bare
// counters (queue wait, synthesis seconds, synthesis max) are now derived
// from real histograms, which /metrics additionally exposes with full
// bucket series. Synthesis latency is split three ways — plan-cache hit,
// full-search miss, and repair — so tail inspection does not conflate a
// sub-millisecond replay with a multi-second cold search.
type poolMetrics struct {
	reg *obs.Registry

	requests, plans, infeasible, failures *obs.Counter
	badRequests                           *obs.Counter
	rejectedQueue, expired, canceled      *obs.Counter
	acks, repairs, repairFailures         *obs.Counter
	evictions, rebuilds, snapshotRestores *obs.Counter

	queueWait   *obs.Histogram
	synthHit    *obs.Histogram
	synthMiss   *obs.Histogram
	synthRepair *obs.Histogram
	snapRestore *obs.Histogram

	tenantRequests *obs.CounterVec
}

// initMetrics registers the pool's metric families in the order /metrics
// has always rendered them, with the histogram and per-tenant families
// appended after. Gauges and derived counters sample the pool at render
// time, so /metrics needs no snapshotting pass of its own.
func (p *Pool) initMetrics() {
	reg := obs.NewRegistry()
	m := &p.m
	m.reg = reg

	reg.Gauge("netupdate_pool_tenants", "Registered tenants.", func() float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return float64(len(p.tenants))
	})
	reg.Gauge("netupdate_pool_warm_sessions", "Sessions currently held warm.", func() float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return float64(p.lru.Len())
	})
	reg.Gauge("netupdate_pool_workers", "Global synthesis worker budget.", func() float64 {
		return float64(p.opts.workers())
	})
	m.requests = reg.Counter("netupdate_requests_total", "Synthesis requests received.")
	m.plans = reg.Counter("netupdate_plans_total", "Requests answered with a plan.")
	m.infeasible = reg.Counter("netupdate_infeasible_total", "Requests with no correct ordering.")
	m.failures = reg.Counter("netupdate_failures_total", "Requests failed for other reasons.")
	m.badRequests = reg.Counter("netupdate_bad_requests_total", "Semantically invalid deltas.")
	m.rejectedQueue = reg.Counter("netupdate_rejected_queue_full_total", "Requests shed by per-tenant queue bounds.")
	m.expired = reg.Counter("netupdate_deadline_expired_total", "Requests whose deadline fired.")
	m.canceled = reg.Counter("netupdate_canceled_total", "Requests canceled by the client.")
	m.acks = reg.Counter("netupdate_step_acks_total", "Plan-step commit acks recorded.")
	m.repairs = reg.Counter("netupdate_repairs_total", "Failure acks answered with a repair plan.")
	m.repairFailures = reg.Counter("netupdate_repair_failures_total", "Failure acks that could not be repaired.")
	m.evictions = reg.Counter("netupdate_evictions_total", "Warm sessions evicted under the LRU budget.")
	m.rebuilds = reg.Counter("netupdate_session_rebuilds_total", "Sessions rebuilt after eviction.")
	m.snapshotRestores = reg.Counter("netupdate_snapshot_restores_total", "Rebuilds served by restoring an eviction snapshot.")
	reg.FuncCounter("netupdate_cold_rebuilds_total", "Rebuilds that paid the full cold construction.", func() float64 {
		return float64(m.rebuilds.Value() - m.snapshotRestores.Value())
	})
	reg.Gauge("netupdate_snapshot_bytes", "Snapshot bytes held for evicted tenants.", func() float64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		var snapBytes int64
		for _, t := range p.tenants {
			snapBytes += int64(len(t.snap))
		}
		return float64(snapBytes)
	})
	reg.Gauge("netupdate_shared_arenas", "Distinct topology shapes with a shared state arena.", func() float64 {
		return float64(p.arenas.size())
	})
	reg.FuncCounter("netupdate_queue_wait_seconds_total", "Total time requests spent queued.", func() float64 {
		return m.queueWait.SumSeconds()
	})
	reg.FuncCounter("netupdate_synthesis_seconds_total", "Total engine time.", func() float64 {
		return m.synthHit.SumSeconds() + m.synthMiss.SumSeconds() + m.synthRepair.SumSeconds()
	})
	reg.Gauge("netupdate_synthesis_seconds_max", "Slowest synthesis so far.", func() float64 {
		return float64(maxSynthNanos(m)) / 1e9
	})
	reg.FuncCounter("netupdate_plan_cache_hits_total", "Syntheses served from the verification-first plan cache.", func() float64 {
		cache, _ := p.learn.totals()
		return float64(cache.Hits)
	})
	reg.FuncCounter("netupdate_plan_cache_misses_total", "Syntheses that ran the full search with a cache attached.", func() float64 {
		cache, _ := p.learn.totals()
		return float64(cache.Misses)
	})
	reg.FuncCounter("netupdate_plan_cache_verify_failures_total", "Cached plans that failed replay verification and were evicted.", func() float64 {
		cache, _ := p.learn.totals()
		return float64(cache.VerifyFailures)
	})
	reg.FuncCounter("netupdate_plan_cache_evictions_total", "Plan-cache capacity evictions.", func() float64 {
		cache, _ := p.learn.totals()
		return float64(cache.Evictions)
	})
	reg.Gauge("netupdate_plan_cache_entries", "Cached instances across all shared learning stores.", func() float64 {
		cache, _ := p.learn.totals()
		return float64(cache.Entries)
	})
	reg.Gauge("netupdate_learn_stores", "Shared cross-tenant learning stores held.", func() float64 {
		_, stores := p.learn.totals()
		return float64(stores)
	})

	m.queueWait = reg.Histogram("netupdate_queue_wait_seconds", "Time requests spent waiting for the tenant gate and a worker slot.")
	m.synthHit = reg.Histogram("netupdate_synthesis_hit_seconds", "Synthesis latency of plan-cache hits.")
	m.synthMiss = reg.Histogram("netupdate_synthesis_miss_seconds", "Synthesis latency of full-search runs (including failures).")
	m.synthRepair = reg.Histogram("netupdate_synthesis_repair_seconds", "Synthesis latency of repair runs.")
	m.snapRestore = reg.Histogram("netupdate_snapshot_restore_seconds", "Time to restore an evicted session from its snapshot.")
	m.tenantRequests = reg.CounterVec("netupdate_tenant_requests_total", "Requests received per tenant.", "tenant")
}

// maxSynthNanos is the slowest synthesis across the three latency splits.
func maxSynthNanos(m *poolMetrics) int64 {
	max := m.synthHit.MaxNanos()
	if v := m.synthMiss.MaxNanos(); v > max {
		max = v
	}
	if v := m.synthRepair.MaxNanos(); v > max {
		max = v
	}
	return max
}

// Metrics exposes the pool's metric registry (GET /metrics renders it).
func (p *Pool) Metrics() *obs.Registry { return p.m.reg }
