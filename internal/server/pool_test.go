package server_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"netupdate"
	"netupdate/internal/bench"
	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/server"
)

// expectedPlans replays one tenant's delta sequence on a dedicated
// netupdate.Synthesizer — the single-tenant baseline the pool must match
// byte for byte.
func expectedPlans(t *testing.T, tl *bench.TenantLoad) []string {
	t.Helper()
	base, err := tl.Spec.StreamHeader.Build()
	if err != nil {
		t.Fatal(err)
	}
	opts, err := tl.Spec.Options.Build()
	if err != nil {
		t.Fatal(err)
	}
	sy, err := netupdate.NewSynthesizer(base.Topo, base.Init, base.Specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	cur := base.Init
	var plans []string
	for i := range tl.Deltas {
		tgt, err := base.Apply(cur, &tl.Deltas[i])
		if err != nil {
			t.Fatal(err)
		}
		plan, err := sy.Synthesize(tgt)
		if err != nil {
			t.Fatalf("baseline delta %d: %v", i, err)
		}
		plans = append(plans, plan.String())
		cur = tgt
	}
	return plans
}

// poolPlans replays every tenant's deltas through one shared pool, all
// tenants concurrently (per-tenant order preserved), returning each
// tenant's plan strings.
func poolPlans(t *testing.T, p *server.Pool, loads []*bench.TenantLoad) [][]string {
	t.Helper()
	ids := make([]string, len(loads))
	for i, tl := range loads {
		info, err := p.Register(tl.Spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = info.ID
	}
	out := make([][]string, len(loads))
	errs := make([]error, len(loads))
	var wg sync.WaitGroup
	for i := range loads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for di := range loads[i].Deltas {
				plan, err := p.Synthesize(context.Background(), ids[i], &loads[i].Deltas[di])
				if err != nil {
					errs[i] = fmt.Errorf("delta %d: %w", di, err)
					return
				}
				out[i] = append(out[i], plan.String())
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
	}
	return out
}

// TestPoolMultiTenantConformance: >= 8 tenants served concurrently from
// one pool must produce plans byte-identical to a dedicated per-tenant
// Synthesizer, across all four checker backends. Run with -race in CI,
// this doubles as the cross-tenant concurrency soundness check.
func TestPoolMultiTenantConformance(t *testing.T) {
	for _, checker := range []string{"incremental", "batch", "nusmv", "netplumber"} {
		t.Run(checker, func(t *testing.T) {
			loads, err := bench.MakeTenantLoads(8, 40, 3, server.OptionsSpec{Checker: checker}, 7)
			if err != nil {
				t.Fatal(err)
			}
			p := server.NewPool(server.PoolOptions{Workers: 4})
			got := poolPlans(t, p, loads)
			for i, tl := range loads {
				want := expectedPlans(t, tl)
				if len(got[i]) != len(want) {
					t.Fatalf("tenant %d: %d plans, want %d", i, len(got[i]), len(want))
				}
				for j := range want {
					if got[i][j] != want[j] {
						t.Fatalf("tenant %d delta %d: plan diverged:\npool %s\nsolo %s",
							i, j, got[i][j], want[j])
					}
				}
			}
			st := p.Stats()
			if st.Tenants != 8 || st.Plans != int64(8*3) {
				t.Fatalf("stats = %+v", st)
			}
		})
	}
}

// TestPoolEvictionRebuild: a pool with a 2-session budget serving 4
// tenants round-robin must evict and rebuild sessions — and still produce
// plans byte-identical to dedicated baselines, because a rebuilt session
// resumes from the tenant's stored current configuration.
func TestPoolEvictionRebuild(t *testing.T) {
	loads, err := bench.MakeTenantLoads(4, 40, 3, server.OptionsSpec{}, 99)
	if err != nil {
		t.Fatal(err)
	}
	p := server.NewPool(server.PoolOptions{Workers: 1, MaxSessions: 2})
	ids := make([]string, len(loads))
	for i, tl := range loads {
		info, err := p.Register(tl.Spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = info.ID
	}
	// Round-robin across tenants so every request lands on a freshly
	// evicted tenant (4 tenants, budget 2).
	got := make([][]string, len(loads))
	for di := 0; di < 3; di++ {
		for i := range loads {
			plan, err := p.Synthesize(context.Background(), ids[i], &loads[i].Deltas[di])
			if err != nil {
				t.Fatalf("tenant %d delta %d: %v", i, di, err)
			}
			got[i] = append(got[i], plan.String())
		}
	}
	for i, tl := range loads {
		want := expectedPlans(t, tl)
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("tenant %d delta %d: plan diverged after eviction:\npool %s\nsolo %s",
					i, j, got[i][j], want[j])
			}
		}
	}
	st := p.Stats()
	if st.WarmSessions > 2 {
		t.Fatalf("warm sessions = %d, budget 2", st.WarmSessions)
	}
	if st.Evictions == 0 || st.SessionRebuilds == 0 {
		t.Fatalf("expected evictions and rebuilds, got %+v", st)
	}
	// Tenant stats reflect the cold/warm split.
	cold := 0
	for _, id := range ids {
		ts, err := p.TenantStats(id)
		if err != nil {
			t.Fatal(err)
		}
		if !ts.Warm {
			cold++
		}
		if ts.Runs != 3 || ts.Plans != 3 {
			t.Fatalf("tenant %s stats = %+v", id, ts)
		}
	}
	if cold != 2 {
		t.Fatalf("cold tenants = %d, want 2", cold)
	}
}

// TestPoolDeadlineExceeded: a request whose context deadline fires
// mid-search reports core.ErrTimeout (retryable), leaves the tenant at
// its previous configuration, and the next request succeeds.
func TestPoolDeadlineExceeded(t *testing.T) {
	loads, err := bench.MakeTenantLoads(1, 60, 2, server.OptionsSpec{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := server.NewPool(server.PoolOptions{Workers: 1})
	info, err := p.Register(loads[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	_, serr := p.Synthesize(ctx, info.ID, &loads[0].Deltas[0])
	cancel()
	if !errors.Is(serr, core.ErrTimeout) {
		t.Fatalf("err = %v, want core.ErrTimeout", serr)
	}
	if !server.Retryable(serr) {
		t.Fatal("deadline expiry must be retryable")
	}
	if plan, err := p.Synthesize(context.Background(), info.ID, &loads[0].Deltas[0]); err != nil || plan == nil {
		t.Fatalf("tenant dead after expired request: %v", err)
	}
	st := p.Stats()
	if st.DeadlineExpired != 1 || st.Plans != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPoolUnknownTenantAndBadDelta: typed errors for the two client
// mistakes.
func TestPoolUnknownTenantAndBadDelta(t *testing.T) {
	loads, err := bench.MakeTenantLoads(1, 40, 1, server.OptionsSpec{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := server.NewPool(server.PoolOptions{})
	if _, err := p.Synthesize(context.Background(), "tdeadbeef", &loads[0].Deltas[0]); !errors.Is(err, server.ErrUnknownTenant) {
		t.Fatalf("err = %v, want ErrUnknownTenant", err)
	}
	info, err := p.Register(loads[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	bad := config.StreamDelta{Reroute: []config.Reroute{{Class: "nope", Path: []int{0, 1}}}}
	_, serr := p.Synthesize(context.Background(), info.ID, &bad)
	if !errors.Is(serr, config.ErrBadDelta) {
		t.Fatalf("err = %v, want config.ErrBadDelta", serr)
	}
	if server.Retryable(serr) {
		t.Fatal("a bad delta is not retryable")
	}
	// And the tenant still works.
	if _, err := p.Synthesize(context.Background(), info.ID, &loads[0].Deltas[0]); err != nil {
		t.Fatalf("tenant dead after bad delta: %v", err)
	}
}

// TestPoolRegisterIdempotent: the same spec fingerprints to the same
// tenant; a different spec (other options) is a different tenant.
func TestPoolRegisterIdempotent(t *testing.T) {
	loads, err := bench.MakeTenantLoads(1, 40, 1, server.OptionsSpec{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	p := server.NewPool(server.PoolOptions{})
	a, err := p.Register(loads[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Register(loads[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Created || b.Created || a.ID != b.ID {
		t.Fatalf("a = %+v, b = %+v", a, b)
	}
	other := *loads[0].Spec
	other.Options = server.OptionsSpec{Checker: "batch"}
	c, err := p.Register(&other)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Created || c.ID == a.ID {
		t.Fatalf("distinct options must be a distinct tenant: %+v vs %+v", c, a)
	}
}

// TestPoolClose: a draining pool refuses new work but finishes what it
// admitted.
func TestPoolClose(t *testing.T) {
	loads, err := bench.MakeTenantLoads(1, 40, 1, server.OptionsSpec{}, 13)
	if err != nil {
		t.Fatal(err)
	}
	p := server.NewPool(server.PoolOptions{})
	info, err := p.Register(loads[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Synthesize(context.Background(), info.ID, &loads[0].Deltas[0]); !errors.Is(err, server.ErrPoolClosed) {
		t.Fatalf("err = %v, want ErrPoolClosed", err)
	}
	if _, err := p.Register(loads[0].Spec); !errors.Is(err, server.ErrPoolClosed) {
		t.Fatalf("register after close: err = %v, want ErrPoolClosed", err)
	}
	if err := p.Close(context.Background()); err != nil {
		t.Fatal("Close must be idempotent:", err)
	}
}

// TestPoolSoak: sustained mixed-tenant traffic with a tight session
// budget and enough workers to overlap everything — the race-clean soak
// for the admission, eviction, and rebuild machinery (CI runs it under
// -race). Queue-full sheds are tolerated; anything else fails.
func TestPoolSoak(t *testing.T) {
	rounds := 4
	if testing.Short() {
		rounds = 2
	}
	loads, err := bench.MakeTenantLoads(6, 40, rounds, server.OptionsSpec{}, 23)
	if err != nil {
		t.Fatal(err)
	}
	p := server.NewPool(server.PoolOptions{
		Workers: 4, MaxSessions: 2, QueueDepth: 2, DefaultTimeout: time.Minute,
	})
	ids := make([]string, len(loads))
	for i, tl := range loads {
		info, err := p.Register(tl.Spec)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = info.ID
	}
	var wg sync.WaitGroup
	for i := range loads {
		// Two clients per tenant hammering the same delta sequence:
		// contention on the tenant gate, the queue bound, and the LRU.
		for c := 0; c < 2; c++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for di := range loads[i].Deltas {
					_, err := p.Synthesize(context.Background(), ids[i], &loads[i].Deltas[di])
					switch {
					case err == nil:
					case errors.Is(err, server.ErrQueueFull):
					case errors.Is(err, config.ErrBadDelta):
						// A duplicate flip of an already-flipped diamond
						// can be a no-op reroute; still a valid target.
						t.Errorf("unexpected bad delta: %v", err)
					default:
						t.Errorf("soak: %v", err)
					}
				}
			}(i)
		}
	}
	wg.Wait()
	st := p.Stats()
	if st.Plans == 0 {
		t.Fatalf("soak served nothing: %+v", st)
	}
	if st.WarmSessions > 2 {
		t.Fatalf("budget violated at rest: %+v", st)
	}
	if err := p.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
