package server

import (
	"errors"

	"netupdate/internal/core"
)

// Admission and lifecycle failures. These are the typed errors the
// serving layer adds on top of the engine's own failure modes
// (core.ErrNoOrdering, core.ErrTimeout, core.ErrCanceled,
// core.ErrFinalViolation, ...), which pass through Pool.Synthesize
// unwrapped-detectable via errors.Is.
var (
	// ErrUnknownTenant reports a request for a tenant id the pool has
	// never seen (or that was registered on another daemon instance).
	ErrUnknownTenant = errors.New("server: unknown tenant")
	// ErrQueueFull is the load-shedding answer: the tenant already has
	// its full budget of outstanding requests. The request was not
	// admitted and performed no work; it is safe — and expected — to
	// retry after a short backoff.
	ErrQueueFull = errors.New("server: tenant queue full, retry later")
	// ErrPoolClosed reports that the pool is draining or closed and
	// admits no new work.
	ErrPoolClosed = errors.New("server: pool is shut down")
)

// Retryable reports whether a Pool.Synthesize failure is transient
// load-shedding: the request was rejected without side effects and a
// retry (against this or another replica) may succeed. Engine verdicts
// (infeasible, violating target) and bad requests are not retryable;
// deadline expiry is — the caller chose the budget, a roomier retry can
// succeed.
func Retryable(err error) bool {
	return errors.Is(err, ErrQueueFull) || errors.Is(err, core.ErrTimeout)
}
