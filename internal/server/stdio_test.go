package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"netupdate/internal/core"
	"netupdate/internal/server"
)

const stdioStream = `{"name":"line","topology":{"switches":4,"links":[[0,1],[1,3],[0,2],[2,3]],
 "hosts":[{"id":100,"switch":0},{"id":101,"switch":3}]},
 "classes":[{"name":"c","src":100,"dst":101,"path":[0,1,3],"spec":"sw=0 -> F sw=3"}]}
{"reroute":[{"class":"c","path":[0,2,3]}]}
{"reroute":[{"class":"missing","path":[0,2,3]}]}
{"reroute":[{"class":"c","path":[0,1,3]}]}
`

// lockedBuffer lets the test poll output written from ServeStdio's
// goroutine without a race.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := strings.TrimSpace(b.buf.String())
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// TestServeStdioEndToEnd: the -stream serving surface over a pool — one
// result line per delta, bad deltas positioned and skipped, stream
// summary on errw.
func TestServeStdioEndToEnd(t *testing.T) {
	p := server.NewPool(server.PoolOptions{Workers: 1, MaxSessions: 1, QueueDepth: 1})
	var out, errw lockedBuffer
	err := server.ServeStdio(context.Background(), strings.NewReader(stdioStream),
		&out, &errw, p, core.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	lines := out.lines()
	if len(lines) != 3 {
		t.Fatalf("lines = %q", lines)
	}
	var results []server.Result
	for _, l := range lines {
		var r server.Result
		if err := json.Unmarshal([]byte(l), &r); err != nil {
			t.Fatalf("%q: %v", l, err)
		}
		results = append(results, r)
	}
	if results[0].Result != "plan" || results[0].Seq != 1 || results[0].Tenant == "" {
		t.Fatalf("first = %+v", results[0])
	}
	if results[1].Result != "error" || results[1].Line != 5 ||
		!strings.Contains(results[1].Error, results[1].Tenant) {
		t.Fatalf("bad delta must carry tenant and line 5 (header spans 3 lines): %+v", results[1])
	}
	if results[2].Result != "plan" {
		t.Fatalf("third = %+v", results[2])
	}
	if elog := strings.Join(errw.lines(), "\n"); !strings.Contains(elog, "3 syntheses served") {
		t.Fatalf("summary missing: %q", elog)
	}
}

// TestServeStdioGracefulCancel: canceling the context (the CLI's signal
// path) stops intake — the already-served result lines stand, ServeStdio
// returns nil, and the input is never read to EOF.
func TestServeStdioGracefulCancel(t *testing.T) {
	pr, pw := io.Pipe()
	p := server.NewPool(server.PoolOptions{Workers: 1, MaxSessions: 1, QueueDepth: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var out, errw lockedBuffer
	done := make(chan error, 1)
	go func() {
		done <- server.ServeStdio(ctx, pr, &out, &errw, p, core.Options{}, true)
	}()
	header := `{"name":"line","topology":{"switches":4,"links":[[0,1],[1,3],[0,2],[2,3]],"hosts":[{"id":100,"switch":0},{"id":101,"switch":3}]},"classes":[{"name":"c","src":100,"dst":101,"path":[0,1,3],"spec":"sw=0 -> F sw=3"}]}`
	if _, err := io.WriteString(pw, header+"\n"+`{"reroute":[{"class":"c","path":[0,2,3]}]}`+"\n"); err != nil {
		t.Fatal(err)
	}
	// Wait for the in-flight delta's plan line to flush, then "send the
	// signal" while the reader is blocked on a silent stdin.
	deadline := time.Now().Add(10 * time.Second)
	for len(out.lines()) < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no result line; out = %q", out.lines())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown must not error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeStdio did not return after cancel")
	}
	if lines := out.lines(); len(lines) != 1 {
		t.Fatalf("flushed lines = %q, want the one in-flight result", lines)
	}
	pw.Close()
}

// TestServeStdioDecodeErrorTerminal: a syntax error mid-stream emits a
// positioned error line and then fails the stream.
func TestServeStdioDecodeErrorTerminal(t *testing.T) {
	in := strings.ReplaceAll(stdioStream, `{"reroute":[{"class":"missing","path":[0,2,3]}]}`, `{"reroute": broken`)
	p := server.NewPool(server.PoolOptions{Workers: 1, MaxSessions: 1, QueueDepth: 1})
	var out, errw lockedBuffer
	err := server.ServeStdio(context.Background(), strings.NewReader(in), &out, &errw, p, core.Options{}, true)
	if err == nil {
		t.Fatal("syntax error must be terminal")
	}
	lines := out.lines()
	if len(lines) != 2 {
		t.Fatalf("lines = %q", lines)
	}
	var last server.Result
	if err := json.Unmarshal([]byte(lines[1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Result != "error" || last.Line != 5 {
		t.Fatalf("decode error must be positioned on line 5: %+v", last)
	}
}
