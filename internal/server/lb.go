package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"

	"netupdate/internal/obs"
)

// LB is the sharding router (cmd/netupdatelb): it spreads tenants across
// netupdated replicas with a consistent-hash ring, proxies each tenant's
// streaming traffic to its owner, and — when the ring changes — migrates
// affected tenants by exporting their session snapshot from the old
// owner and installing it on the new one, so warm state (and its learned
// caches) moves with the tenant instead of being re-earned cold.
//
// The LB records every registration it forwards (the raw spec document),
// which is what lets it re-register a tenant on the receiving replica
// during migration. Tenants registered directly with a replica, behind
// the LB's back, are still routable (ownership falls back to the ring)
// but cannot be migrated.
type LB struct {
	client *http.Client

	mu      sync.Mutex
	ring    *Ring
	specs   map[string][]byte // tenant id -> raw registration document
	owners  map[string]string // tenant id -> current owner replica
	proxies map[string]*httputil.ReverseProxy

	reg                                    *obs.Registry
	proxied, migrations, migrationFailures *obs.Counter
}

// NewLB builds a router over an initial replica list. vnodes is the
// per-replica virtual-node count (0 means DefaultVirtualNodes) and must
// match the value stream clients shard with.
func NewLB(replicas []string, vnodes int) (*LB, error) {
	lb := &LB{
		client:  http.DefaultClient,
		ring:    NewRing(vnodes),
		specs:   map[string][]byte{},
		owners:  map[string]string{},
		proxies: map[string]*httputil.ReverseProxy{},
	}
	lb.reg = obs.NewRegistry()
	lb.reg.Gauge("netupdate_lb_replicas", "Replicas on the hash ring.", func() float64 {
		lb.mu.Lock()
		defer lb.mu.Unlock()
		return float64(lb.ring.Size())
	})
	lb.reg.Gauge("netupdate_lb_tenants", "Tenants with recorded placement.", func() float64 {
		lb.mu.Lock()
		defer lb.mu.Unlock()
		return float64(len(lb.owners))
	})
	lb.proxied = lb.reg.Counter("netupdate_lb_proxied_requests_total", "Tenant requests proxied to a replica.")
	lb.migrations = lb.reg.Counter("netupdate_lb_migrations_total", "Tenants migrated with their snapshot.")
	lb.migrationFailures = lb.reg.Counter("netupdate_lb_migration_failures_total", "Migrations that fell back to cold placement.")
	for _, r := range replicas {
		if err := lb.addReplicaLocked(r); err != nil {
			return nil, err
		}
	}
	return lb, nil
}

func (lb *LB) addReplicaLocked(replica string) error {
	target, err := url.Parse(replica)
	if err != nil || target.Scheme == "" || target.Host == "" {
		return fmt.Errorf("server: lb: bad replica url %q", replica)
	}
	lb.ring.Add(replica)
	if _, ok := lb.proxies[replica]; !ok {
		lb.proxies[replica] = &httputil.ReverseProxy{
			Rewrite: func(pr *httputil.ProxyRequest) {
				pr.SetURL(target)
				pr.SetXForwarded()
				// The LB is where requests enter the serving stack, so it
				// mints the request id clients did not supply; the daemon
				// echoes it back and stamps it on the run's stats and trace.
				if pr.Out.Header.Get(obs.RequestIDHeader) == "" {
					pr.Out.Header.Set(obs.RequestIDHeader, obs.NewRequestID())
				}
			},
			// The synthesize endpoint is duplex JSONL: plans must reach
			// the client as they are produced, not when the exchange
			// ends. -1 flushes every write through immediately.
			FlushInterval: -1,
		}
	}
	return nil
}

// Handler is the LB's HTTP surface: the replica API proxied by tenant
// ownership, plus the ring-administration endpoints.
//
//	POST   /v1/tenants             register (routed by spec fingerprint)
//	*      /v1/tenants/{id}/...    proxied to the tenant's owner
//	GET    /lb/replicas            ring membership + placement
//	POST   /lb/replicas            add a replica {"url":...}; rebalances
//	DELETE /lb/replicas?url=U      drain U's tenants away, then remove it
//	GET    /metrics                router counters (Prometheus text)
//	GET    /healthz                liveness
func (lb *LB) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants", lb.handleRegister)
	mux.HandleFunc("/v1/tenants/{id}/{rest...}", lb.handleProxy)
	mux.HandleFunc("GET /lb/replicas", lb.handleReplicasGet)
	mux.HandleFunc("POST /lb/replicas", lb.handleReplicaAdd)
	mux.HandleFunc("DELETE /lb/replicas", lb.handleReplicaRemove)
	mux.HandleFunc("GET /metrics", lb.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// handleRegister routes a registration: the tenant id is the spec
// fingerprint, computed here exactly as the replica computes it, so the
// LB knows the owner before forwarding.
func (lb *LB) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("server: lb: register body: %w", err), 0)
		return
	}
	var spec TenantSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: lb: tenant spec: %w", err), 0)
		return
	}
	id, err := spec.Fingerprint()
	if err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}

	lb.mu.Lock()
	owner, ok := lb.owners[id]
	if !ok {
		owner, ok = lb.ring.Owner(id)
	}
	lb.mu.Unlock()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server: lb: no replicas"), 0)
		return
	}

	resp, err := lb.client.Post(owner+"/v1/tenants", "application/json", bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("server: lb: replica %s: %w", owner, err), 0)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode < 300 {
		lb.mu.Lock()
		lb.specs[id] = body
		lb.owners[id] = owner
		lb.mu.Unlock()
	}
	relay(w, resp)
}

// handleProxy forwards a tenant request to its owner, streaming both
// directions.
func (lb *LB) handleProxy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	lb.mu.Lock()
	owner, ok := lb.owners[id]
	if !ok {
		owner, ok = lb.ring.Owner(id)
	}
	proxy := lb.proxies[owner]
	lb.mu.Unlock()
	if !ok || proxy == nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server: lb: no replica owns tenant %s", id), 0)
		return
	}
	lb.proxied.Inc()
	proxy.ServeHTTP(w, r)
}

type lbReplicasView struct {
	Replicas []string          `json:"replicas"`
	Tenants  map[string]string `json:"tenants"` // id -> owner
}

func (lb *LB) handleReplicasGet(w http.ResponseWriter, _ *http.Request) {
	lb.mu.Lock()
	view := lbReplicasView{Replicas: lb.ring.Replicas(), Tenants: map[string]string{}}
	for id, owner := range lb.owners {
		view.Tenants[id] = owner
	}
	lb.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(view)
}

func (lb *LB) handleReplicaAdd(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL string `json:"url"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: lb: want {\"url\": ...}"), 0)
		return
	}
	lb.mu.Lock()
	err := lb.addReplicaLocked(req.URL)
	lb.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	moved := lb.rebalance()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]int{"migrated": moved})
}

// handleReplicaRemove drains a replica: its tenants are migrated to
// their new ring owners (snapshots included) before the member is
// dropped, so a planned scale-down loses no warm state.
func (lb *LB) handleReplicaRemove(w http.ResponseWriter, r *http.Request) {
	replica := r.URL.Query().Get("url")
	if replica == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: lb: want ?url=replica"), 0)
		return
	}
	lb.mu.Lock()
	if !lb.ring.replicas[replica] {
		lb.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("server: lb: unknown replica %s", replica), 0)
		return
	}
	if lb.ring.Size() == 1 && len(lb.owners) > 0 {
		lb.mu.Unlock()
		writeError(w, http.StatusConflict, fmt.Errorf("server: lb: cannot drain the last replica with tenants placed"), 0)
		return
	}
	lb.ring.Remove(replica)
	lb.mu.Unlock()
	moved := lb.rebalance()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]int{"migrated": moved})
}

// rebalance realigns tenant placement with the current ring, migrating
// every tenant whose owner changed. Returns the number migrated (a
// failed migration still counts the tenant as moved: ownership follows
// the ring and the new owner serves from the re-registered spec, cold).
func (lb *LB) rebalance() int {
	type move struct {
		id, src, dst string
		spec         []byte
	}
	lb.mu.Lock()
	var moves []move
	for id, src := range lb.owners {
		dst, ok := lb.ring.Owner(id)
		if ok && dst != src {
			moves = append(moves, move{id: id, src: src, dst: dst, spec: lb.specs[id]})
		}
	}
	lb.mu.Unlock()

	for _, m := range moves {
		if err := lb.migrate(m.id, m.src, m.dst, m.spec); err != nil {
			lb.migrationFailures.Inc()
		} else {
			lb.migrations.Inc()
		}
		lb.mu.Lock()
		lb.owners[m.id] = m.dst
		lb.mu.Unlock()
	}
	return len(moves)
}

// migrate moves one tenant: export the snapshot from the source, re-
// register the spec on the destination (idempotent there), install the
// snapshot. A source that cannot produce a snapshot degrades to a cold
// re-registration — correct, just slower for the first requests.
func (lb *LB) migrate(id, src, dst string, spec []byte) error {
	if spec == nil {
		return fmt.Errorf("server: lb: tenant %s has no recorded spec", id)
	}
	var img []byte
	if resp, err := lb.client.Get(src + "/v1/tenants/" + id + "/snapshot"); err == nil {
		if resp.StatusCode == http.StatusOK {
			img, _ = io.ReadAll(resp.Body)
		}
		resp.Body.Close()
	}

	resp, err := lb.client.Post(dst+"/v1/tenants", "application/json", bytes.NewReader(spec))
	if err != nil {
		return fmt.Errorf("server: lb: migrate %s to %s: %w", id, dst, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("server: lb: migrate %s: register on %s: status %d", id, dst, resp.StatusCode)
	}
	if len(img) == 0 {
		return nil // cold migration: spec only
	}

	req, err := http.NewRequest(http.MethodPut, dst+"/v1/tenants/"+id+"/snapshot", bytes.NewReader(img))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	putResp, err := lb.client.Do(req)
	if err != nil {
		return fmt.Errorf("server: lb: migrate %s: install on %s: %w", id, dst, err)
	}
	io.Copy(io.Discard, putResp.Body)
	putResp.Body.Close()
	if putResp.StatusCode >= 300 {
		return fmt.Errorf("server: lb: migrate %s: install on %s: status %d", id, dst, putResp.StatusCode)
	}
	return nil
}

func (lb *LB) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	lb.reg.WritePrometheus(w)
}

// relay copies a proxied response verbatim.
func relay(w http.ResponseWriter, resp *http.Response) {
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
