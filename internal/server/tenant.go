// Package server is the multi-tenant synthesis service layer: a pool of
// warm core.Session instances keyed by a tenant fingerprint (topology +
// class specifications + engine options), an admission controller that
// keeps cross-tenant synthesis concurrent under a global worker budget
// while serializing each tenant's single-flight session, and two serving
// surfaces over the same pool — the HTTP/JSONL daemon (cmd/netupdated)
// and the stdin/stdout stream client (netupdate -stream). See DESIGN.md
// "Service layer".
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
)

// TenantSpec is the registration document for one tenant: a scenario
// stream header (topology, traffic classes with initial routes and LTL
// specifications — exactly the first line of a netupdate -stream input)
// plus the engine options the tenant's session is built with. The spec is
// retained by the pool: it is the durable form a tenant's session is
// rebuilt from after cold eviction.
type TenantSpec struct {
	config.StreamHeader
	Options OptionsSpec `json:"options,omitempty"`
}

// OptionsSpec is the JSON form of the engine options that shape a
// tenant's session — a faithful encoding of every core.Options field
// (Build ∘ OptionsSpecOf is the identity), so no flag the stream CLI
// accepts is silently dropped on its way through the pool. The worker
// budget and queue bounds are pool-level policy, not per-tenant.
type OptionsSpec struct {
	// Checker selects the backend: "incremental" (default), "batch",
	// "nusmv", or "netplumber".
	Checker string `json:"checker,omitempty"`
	// Rules switches to rule-granularity updates.
	Rules bool `json:"rules,omitempty"`
	// TwoSimple allows two updates per switch (merge then finalize).
	TwoSimple bool `json:"twoSimple,omitempty"`
	// NoWaitRemoval keeps every wait barrier.
	NoWaitRemoval bool `json:"noWaitRemoval,omitempty"`
	// NoDecompose forces one joint search per request.
	NoDecompose bool `json:"noDecompose,omitempty"`
	// Parallel is the per-synthesis worker count (0 = one per CPU, 1 =
	// sequential).
	Parallel int `json:"parallel,omitempty"`
	// FirstPlan commits the first plan any search worker finds (faster,
	// nondeterministic) instead of the sequential-equivalent plan.
	FirstPlan bool `json:"firstPlan,omitempty"`
	// NoCexLearning, NoEarlyTermination, and NoHeuristicOrder are the
	// engine's ablation switches.
	NoCexLearning      bool `json:"noCexLearning,omitempty"`
	NoEarlyTermination bool `json:"noEarlyTermination,omitempty"`
	NoHeuristicOrder   bool `json:"noHeuristicOrder,omitempty"`
	// MinCompletion makes completion time under the DAG latency model a
	// tie-breaker among valid plans (core.Options.MinimizeCompletionTime).
	MinCompletion bool `json:"minCompletion,omitempty"`
	// NoPlanCache opts the tenant out of the pool's shared plan cache and
	// persistent learning (core.Options.NoPlanCache): every request pays
	// the full search.
	NoPlanCache bool `json:"noPlanCache,omitempty"`
	// Trace holds a span recorder on the tenant's session so every run
	// exports its trace (core.Options.Trace). Per-request tracing via
	// ?trace=1 needs no registration-time opt-in.
	Trace bool `json:"trace,omitempty"`
	// TimeoutNS bounds each synthesis inside the engine (nanoseconds, a
	// time.Duration verbatim); requests may tighten it further per call
	// via their deadline.
	TimeoutNS int64 `json:"timeoutNs,omitempty"`
}

// Build translates the spec into engine options.
func (o OptionsSpec) Build() (core.Options, error) {
	opts := core.Options{
		RuleGranularity:        o.Rules,
		TwoSimple:              o.TwoSimple,
		NoWaitRemoval:          o.NoWaitRemoval,
		NoDecomposition:        o.NoDecompose,
		Parallelism:            o.Parallel,
		FirstPlanWins:          o.FirstPlan,
		NoCexLearning:          o.NoCexLearning,
		NoEarlyTermination:     o.NoEarlyTermination,
		NoHeuristicOrder:       o.NoHeuristicOrder,
		MinimizeCompletionTime: o.MinCompletion,
		NoPlanCache:            o.NoPlanCache,
		Trace:                  o.Trace,
		Timeout:                time.Duration(o.TimeoutNS),
	}
	switch o.Checker {
	case "", "incremental":
		opts.Checker = core.CheckerIncremental
	case "batch":
		opts.Checker = core.CheckerBatch
	case "nusmv":
		opts.Checker = core.CheckerNuSMV
	case "netplumber":
		opts.Checker = core.CheckerNetPlumber
	default:
		return core.Options{}, fmt.Errorf("server: unknown checker %q", o.Checker)
	}
	return opts, nil
}

// OptionsSpecOf is the exact inverse of Build; the stream CLI uses it to
// register its flag set as a tenant spec.
func OptionsSpecOf(opts core.Options) OptionsSpec {
	o := OptionsSpec{
		Rules:              opts.RuleGranularity,
		TwoSimple:          opts.TwoSimple,
		NoWaitRemoval:      opts.NoWaitRemoval,
		NoDecompose:        opts.NoDecomposition,
		Parallel:           opts.Parallelism,
		FirstPlan:          opts.FirstPlanWins,
		NoCexLearning:      opts.NoCexLearning,
		NoEarlyTermination: opts.NoEarlyTermination,
		NoHeuristicOrder:   opts.NoHeuristicOrder,
		MinCompletion:      opts.MinimizeCompletionTime,
		NoPlanCache:        opts.NoPlanCache,
		Trace:              opts.Trace,
		TimeoutNS:          int64(opts.Timeout),
	}
	switch opts.Checker {
	case core.CheckerBatch:
		o.Checker = "batch"
	case core.CheckerNuSMV:
		o.Checker = "nusmv"
	case core.CheckerNetPlumber:
		o.Checker = "netplumber"
	default:
		o.Checker = "incremental"
	}
	return o
}

// Fingerprint derives the tenant id from the canonical JSON encoding of
// the spec: two registrations of the same topology, classes, and engine
// options land on the same warm session, which is what makes the pool a
// cache rather than a leak. Struct field order makes the encoding
// canonical without explicit sorting.
func (s *TenantSpec) Fingerprint() (string, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return "", fmt.Errorf("server: fingerprinting tenant spec: %w", err)
	}
	sum := sha256.Sum256(b)
	return "t" + hex.EncodeToString(sum[:8]), nil
}

// LearnFingerprint is the cross-tenant learning key: the fingerprint of
// the spec with its display name cleared, so tenants that differ only in
// name — the common shape of fleet rollouts, where every region registers
// the same scenario under its own label — share one plan cache and one
// body of learned state.
func (s *TenantSpec) LearnFingerprint() (string, error) {
	clone := *s
	clone.Name = ""
	return clone.Fingerprint()
}

// TenantInfo is Register's answer.
type TenantInfo struct {
	ID string `json:"id"`
	// Created is false when the spec fingerprint was already registered
	// (the existing tenant — and its warm state — is shared).
	Created  bool   `json:"created"`
	Name     string `json:"name,omitempty"`
	Classes  int    `json:"classes"`
	Switches int    `json:"switches"`
}

// TenantStats is the per-tenant serving summary.
type TenantStats struct {
	ID       string `json:"id"`
	Name     string `json:"name,omitempty"`
	Classes  int    `json:"classes"`
	Switches int    `json:"switches"`
	// Warm reports whether the tenant currently holds a built session
	// (false after cold eviction; the next request rebuilds it).
	Warm bool `json:"warm"`
	// Pending is the number of admitted requests (queued + running).
	Pending  int   `json:"pending"`
	Runs     int64 `json:"runs"`
	Plans    int64 `json:"plans"`
	Failures int64 `json:"failures"`
	// Acks counts recorded plan-step commit acks; Repairs counts failure
	// reports answered with a repair plan.
	Acks    int64 `json:"acks"`
	Repairs int64 `json:"repairs"`
	// Rebuilds counts session constructions beyond the first (evict →
	// rebuild round trips); SnapshotRestores are those served by restoring
	// the eviction-time snapshot, ColdRebuilds the rest. SnapshotBytes is
	// the size of the snapshot currently held for this tenant (zero while
	// warm).
	Rebuilds         int64 `json:"rebuilds"`
	SnapshotRestores int64 `json:"snapshotRestores"`
	ColdRebuilds     int64 `json:"coldRebuilds"`
	SnapshotBytes    int   `json:"snapshotBytes"`

	LastSynthMS float64 `json:"lastSynthMs"`
	MeanSynthMS float64 `json:"meanSynthMs"`
	// CacheHits counts syntheses served from the verification-first plan
	// cache (replayed plan or memoized infeasibility); CacheMisses counts
	// those that ran the full search with the cache attached. Both stay
	// zero for tenants registered with noPlanCache.
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
}
