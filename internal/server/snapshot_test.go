package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"netupdate/internal/config"
	"netupdate/internal/core"
)

// reroute builds a one-class delta for the diamond testSpec.
func reroute(path ...int) *config.StreamDelta {
	return &config.StreamDelta{Reroute: []config.Reroute{{Class: "c", Path: path}}}
}

// diamondDeltas is a small rolling workload over the two disjoint paths.
func diamondDeltas() []*config.StreamDelta {
	return []*config.StreamDelta{
		reroute(0, 2, 3), reroute(0, 1, 3), reroute(0, 2, 3), reroute(0, 1, 3),
	}
}

// TestEvictionSnapshotRestoreByteIdentity: a tenant evicted under the
// LRU budget and then resumed must produce exactly the plans a
// never-evicted control produces, and the resume must be served by
// snapshot restore, not a cold rebuild.
func TestEvictionSnapshotRestoreByteIdentity(t *testing.T) {
	evicting := NewPool(PoolOptions{Workers: 1, MaxSessions: 1})
	control := NewPool(PoolOptions{Workers: 1, MaxSessions: -1})
	ctx := context.Background()

	alpha, err := evicting.Register(testSpec("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	calpha, err := control.Register(testSpec("alpha"))
	if err != nil {
		t.Fatal(err)
	}

	deltas := diamondDeltas()
	step := func(n int) (evicted, ctl *core.Plan) {
		t.Helper()
		evictedPlan, err := evicting.Synthesize(ctx, alpha.ID, deltas[n])
		if err != nil {
			t.Fatalf("step %d: evicting pool: %v", n, err)
		}
		ctlPlan, err := control.Synthesize(ctx, calpha.ID, deltas[n])
		if err != nil {
			t.Fatalf("step %d: control pool: %v", n, err)
		}
		return evictedPlan, ctlPlan
	}

	for n := 0; n < 2; n++ {
		ep, cp := step(n)
		if ep.String() != cp.String() {
			t.Fatalf("step %d: pools diverge before eviction", n)
		}
	}

	// A second tenant blows the 1-session budget: alpha is evicted and
	// must leave a snapshot behind.
	if _, err := evicting.Register(testSpec("beta")); err != nil {
		t.Fatal(err)
	}
	st, err := evicting.TenantStats(alpha.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Warm {
		t.Fatal("alpha still warm after budget eviction")
	}
	if st.SnapshotBytes == 0 {
		t.Fatal("eviction left no snapshot")
	}

	for n := 2; n < len(deltas); n++ {
		ep, cp := step(n)
		if got, want := ep.String(), cp.String(); got != want {
			t.Fatalf("step %d: evicted tenant diverged from never-evicted control:\nevicted %s\ncontrol %s",
				n, got, want)
		}
	}

	st, err = evicting.TenantStats(alpha.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotRestores != 1 || st.ColdRebuilds != 0 {
		t.Fatalf("resume not served by restore: %+v", st)
	}
	ps := evicting.Stats()
	if ps.SnapshotRestores != 1 || ps.ColdRebuilds != 0 || ps.Evictions == 0 {
		t.Fatalf("pool stats = %+v", ps)
	}
}

// TestSharedArenaRegistry: tenants with the same topology share one
// arena entry; a different topology adds a second.
func TestSharedArenaRegistry(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1})
	if _, err := p.Register(testSpec("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Register(testSpec("beta")); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().SharedArenas; got != 1 {
		t.Fatalf("same-topology tenants use %d arenas, want 1", got)
	}
	other := testSpec("gamma")
	other.Topology.Links = append(other.Topology.Links, [2]int{1, 2})
	if _, err := p.Register(other); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats().SharedArenas; got != 2 {
		t.Fatalf("distinct topologies use %d arenas, want 2", got)
	}
}

// TestSnapshotHTTPMigration: the GET/PUT snapshot endpoints move a
// tenant's warm state between two independent pools; the receiver picks
// up the sender's current configuration and serves identical plans.
func TestSnapshotHTTPMigration(t *testing.T) {
	src := NewPool(PoolOptions{Workers: 1})
	dst := NewPool(PoolOptions{Workers: 1})
	srcTS := httptest.NewServer(NewHandler(src))
	dstTS := httptest.NewServer(NewHandler(dst))
	defer srcTS.Close()
	defer dstTS.Close()
	ctx := context.Background()

	info, err := src.Register(testSpec("mig"))
	if err != nil {
		t.Fatal(err)
	}
	deltas := diamondDeltas()
	if _, err := src.Synthesize(ctx, info.ID, deltas[0]); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srcTS.URL + "/v1/tenants/" + info.ID + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	img, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(img) == 0 {
		t.Fatalf("snapshot export: status %d, %d bytes", resp.StatusCode, len(img))
	}

	if _, err := dst.Register(testSpec("mig")); err != nil {
		t.Fatal(err)
	}
	put := func(body []byte) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut,
			dstTS.URL+"/v1/tenants/"+info.ID+"/snapshot", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// A corrupted image must be rejected (409) and leave the tenant
	// usable; the genuine image must install.
	bad := append([]byte(nil), img...)
	bad[len(bad)/2] ^= 0x20
	if resp := put(bad); resp.StatusCode != http.StatusConflict {
		t.Fatalf("corrupt install: status %d, want 409", resp.StatusCode)
	}
	if resp := put(img); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("install: status %d, want 204", resp.StatusCode)
	}

	srcCur, err := src.ConfigOf(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	dstCur, err := dst.ConfigOf(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if diff := config.Diff(srcCur, dstCur); len(diff) != 0 {
		t.Fatalf("migrated configuration differs on switches %v", diff)
	}
	for _, d := range deltas[1:] {
		sp, err := src.Synthesize(ctx, info.ID, d)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := dst.Synthesize(ctx, info.ID, d)
		if err != nil {
			t.Fatal(err)
		}
		if sp.String() != dp.String() {
			t.Fatal("migrated tenant diverged from its source")
		}
	}
	if st, _ := dst.TenantStats(info.ID); st.SnapshotRestores == 0 {
		t.Fatalf("install not counted as a snapshot restore: %+v", st)
	}
}

// TestSnapshotAllAndInstall: SnapshotAll captures warm and evicted
// tenants alike; the images restore through InstallSnapshot (the
// -snapshot-dir restart path).
func TestSnapshotAllAndInstall(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, MaxSessions: 1})
	ctx := context.Background()
	a, err := p.Register(testSpec("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Synthesize(ctx, a.ID, reroute(0, 2, 3)); err != nil {
		t.Fatal(err)
	}
	b, err := p.Register(testSpec("beta")) // evicts alpha
	if err != nil {
		t.Fatal(err)
	}
	snaps := p.SnapshotAll()
	if len(snaps[a.ID]) == 0 || len(snaps[b.ID]) == 0 {
		t.Fatalf("SnapshotAll missing tenants: have %d images", len(snaps))
	}

	fresh := NewPool(PoolOptions{Workers: 1})
	for _, spec := range []string{"alpha", "beta"} {
		if _, err := fresh.Register(testSpec(spec)); err != nil {
			t.Fatal(err)
		}
	}
	for id, img := range snaps {
		if err := fresh.InstallSnapshot(ctx, id, img); err != nil {
			t.Fatalf("install %s: %v", id, err)
		}
	}
	oldCur, _ := p.ConfigOf(a.ID)
	newCur, _ := fresh.ConfigOf(a.ID)
	if diff := config.Diff(oldCur, newCur); len(diff) != 0 {
		t.Fatalf("restart lost alpha's position: diff %v", diff)
	}
}

// TestSnapshotEndpointErrors: unknown tenants 404 on both verbs.
func TestSnapshotEndpointErrors(t *testing.T) {
	ts := httptest.NewServer(NewHandler(NewPool(PoolOptions{})))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/tenants/tdeadbeef/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("export status = %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/tenants/tdeadbeef/snapshot", bytes.NewReader([]byte("x")))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("install status = %d, want 404", resp.StatusCode)
	}
}

// metricsBody fetches /metrics as a string.
func metricsBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(b)
}

// TestSnapshotMetricsExposed: the three new series appear in /metrics.
func TestSnapshotMetricsExposed(t *testing.T) {
	ts := httptest.NewServer(NewHandler(NewPool(PoolOptions{})))
	defer ts.Close()
	body := metricsBody(t, ts.URL)
	for _, want := range []string{
		"netupdate_snapshot_restores_total",
		"netupdate_snapshot_bytes",
		"netupdate_shared_arenas",
		"netupdate_cold_rebuilds_total",
	} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Fatalf("metrics missing %s:\n%s", want, body)
		}
	}
}

// specJSON renders a TenantSpec as its registration document.
func specJSON(t *testing.T, spec *TenantSpec) []byte {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
