package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
)

// NewHandler builds the daemon's HTTP surface over a pool:
//
//	POST /v1/tenants                   register a scenario, returns {id}
//	POST /v1/tenants/{id}/synthesize   JSONL deltas in, JSONL plan lines out
//	GET  /v1/tenants/{id}/stats        per-tenant serving summary
//	GET  /metrics                      pool/queue/latency counters (Prometheus text)
//	GET  /healthz                      liveness
//
// The synthesize endpoint streams: each request-body line is one
// StreamDelta, answered in order by one Result line, flushed as it is
// produced — a controller can hold the connection open and read plans as
// they land. An optional ?timeout=DURATION caps each delta's synthesis
// (the request context still bounds the whole exchange).
func NewHandler(p *Pool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		handleRegister(p, w, r)
	})
	mux.HandleFunc("POST /v1/tenants/{id}/synthesize", func(w http.ResponseWriter, r *http.Request) {
		handleSynthesize(p, w, r)
	})
	mux.HandleFunc("GET /v1/tenants/{id}/stats", func(w http.ResponseWriter, r *http.Request) {
		handleStats(p, w, r)
	})
	mux.HandleFunc("GET /v1/tenants/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		handleSnapshotGet(p, w, r)
	})
	mux.HandleFunc("PUT /v1/tenants/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		handleSnapshotPut(p, w, r)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		handleMetrics(p, w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// httpError is the uniform JSON error envelope for non-streaming
// failures.
type httpError struct {
	Error     string `json:"error"`
	Retryable bool   `json:"retryable,omitempty"`
	// Line positions request-body decode errors.
	Line int `json:"line,omitempty"`
}

func writeError(w http.ResponseWriter, status int, err error, line int) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(httpError{Error: err.Error(), Retryable: Retryable(err), Line: line})
}

// statusOf maps pool errors to HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrPoolClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, core.ErrTimeout), errors.Is(err, core.ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, config.ErrBadDelta):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func handleRegister(p *Pool, w http.ResponseWriter, r *http.Request) {
	lines := config.NewLineCountingReader(r.Body)
	dec := json.NewDecoder(lines)
	dec.DisallowUnknownFields()
	var spec TenantSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("server: tenant spec: %w", err), lines.DecodeErrorLine(err, dec))
		return
	}
	info, err := p.Register(&spec)
	if err != nil {
		writeError(w, statusOf(err), err, 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if info.Created {
		w.WriteHeader(http.StatusCreated)
	}
	_ = json.NewEncoder(w).Encode(info)
}

func handleSynthesize(p *Pool, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !p.Lookup(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", ErrUnknownTenant, id), 0)
		return
	}
	var perDelta time.Duration
	if q := r.URL.Query().Get("timeout"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("server: bad timeout %q (want a positive Go duration)", q), 0)
			return
		}
		perDelta = d
	}

	// The endpoint interleaves request-body reads with response writes;
	// HTTP/1.x closes the body on the first write unless full duplex is
	// enabled (HTTP/2 is duplex natively and reports ErrNotSupported —
	// ignored, like the handler-doesn't-support case).
	_ = http.NewResponseController(w).EnableFullDuplex()
	lines := config.NewLineCountingReader(r.Body)
	dec := json.NewDecoder(lines)
	dec.DisallowUnknownFields()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)

	seq := 0
	for {
		var d streamRequest
		if err := dec.Decode(&d); err != nil {
			if err == io.EOF {
				return
			}
			// The body position is unreliable after a syntax error:
			// report the offending line and stop this request. The
			// connection stays usable and already-emitted results stand.
			seq++
			_ = enc.Encode(Result{
				Seq: seq, Tenant: id, Result: "error",
				Error: fmt.Sprintf("tenant %s: request body: %v", id, err),
				Line:  lines.DecodeErrorLine(err, dec),
			})
			return
		}
		seq++
		line := lines.LineAt(dec.InputOffset() - 1)
		lines.Prune(dec.InputOffset())
		ctx := r.Context()
		cancel := func() {}
		if perDelta > 0 {
			ctx, cancel = context.WithTimeout(ctx, perDelta)
		}
		var res Result
		if d.Ack != nil {
			plan, err := p.Ack(ctx, id, d.Ack)
			res = NewAckResult(seq, id, plan, err)
		} else {
			plan, err := p.Synthesize(ctx, id, &d.StreamDelta)
			res = NewResult(seq, id, plan, err)
			if err != nil && errors.Is(err, config.ErrBadDelta) {
				res.Line = line
			}
		}
		cancel()
		if encErr := enc.Encode(res); encErr != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleSnapshotGet exports a tenant's warm state as a portable binary
// session snapshot (the tenant-migration wire format; see DESIGN.md
// "Snapshots, shared arenas & sharding").
func handleSnapshotGet(p *Pool, w http.ResponseWriter, r *http.Request) {
	img, err := p.SnapshotTenant(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, statusOf(err), err, 0)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(img)))
	_, _ = w.Write(img)
}

// handleSnapshotPut installs a snapshot over a registered tenant —
// rejected images (corrupt, version-skewed, or from a different spec)
// leave the tenant untouched and report 409.
func handleSnapshotPut(p *Pool, w http.ResponseWriter, r *http.Request) {
	img, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("server: snapshot body: %w", err), 0)
		return
	}
	if err := p.InstallSnapshot(r.Context(), r.PathValue("id"), img); err != nil {
		status := statusOf(err)
		if errors.Is(err, core.ErrBadSnapshot) || errors.Is(err, core.ErrSnapshotVersion) ||
			errors.Is(err, core.ErrSnapshotMismatch) {
			status = http.StatusConflict
		}
		writeError(w, status, err, 0)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// maxSnapshotBytes bounds an uploaded snapshot body (1 GiB — far above
// any real session, but finite).
const maxSnapshotBytes = 1 << 30

func handleStats(p *Pool, w http.ResponseWriter, r *http.Request) {
	st, err := p.TenantStats(r.PathValue("id"))
	if err != nil {
		writeError(w, statusOf(err), err, 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

// handleMetrics renders the pool counters in the Prometheus text
// exposition format (hand-rolled: the repo takes no dependencies).
func handleMetrics(p *Pool, w http.ResponseWriter) {
	st := p.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	put := func(name, help, typ string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
	}
	put("netupdate_pool_tenants", "Registered tenants.", "gauge", float64(st.Tenants))
	put("netupdate_pool_warm_sessions", "Sessions currently held warm.", "gauge", float64(st.WarmSessions))
	put("netupdate_pool_workers", "Global synthesis worker budget.", "gauge", float64(st.Workers))
	put("netupdate_requests_total", "Synthesis requests received.", "counter", float64(st.Requests))
	put("netupdate_plans_total", "Requests answered with a plan.", "counter", float64(st.Plans))
	put("netupdate_infeasible_total", "Requests with no correct ordering.", "counter", float64(st.Infeasible))
	put("netupdate_failures_total", "Requests failed for other reasons.", "counter", float64(st.Failures))
	put("netupdate_bad_requests_total", "Semantically invalid deltas.", "counter", float64(st.BadRequests))
	put("netupdate_rejected_queue_full_total", "Requests shed by per-tenant queue bounds.", "counter", float64(st.RejectedQueueFull))
	put("netupdate_deadline_expired_total", "Requests whose deadline fired.", "counter", float64(st.DeadlineExpired))
	put("netupdate_canceled_total", "Requests canceled by the client.", "counter", float64(st.Canceled))
	put("netupdate_step_acks_total", "Plan-step commit acks recorded.", "counter", float64(st.StepAcks))
	put("netupdate_repairs_total", "Failure acks answered with a repair plan.", "counter", float64(st.Repairs))
	put("netupdate_repair_failures_total", "Failure acks that could not be repaired.", "counter", float64(st.RepairFailures))
	put("netupdate_evictions_total", "Warm sessions evicted under the LRU budget.", "counter", float64(st.Evictions))
	put("netupdate_session_rebuilds_total", "Sessions rebuilt after eviction.", "counter", float64(st.SessionRebuilds))
	put("netupdate_snapshot_restores_total", "Rebuilds served by restoring an eviction snapshot.", "counter", float64(st.SnapshotRestores))
	put("netupdate_cold_rebuilds_total", "Rebuilds that paid the full cold construction.", "counter", float64(st.ColdRebuilds))
	put("netupdate_snapshot_bytes", "Snapshot bytes held for evicted tenants.", "gauge", float64(st.SnapshotBytesHeld))
	put("netupdate_shared_arenas", "Distinct topology shapes with a shared state arena.", "gauge", float64(st.SharedArenas))
	put("netupdate_queue_wait_seconds_total", "Total time requests spent queued.", "counter", st.QueueWaitMSTotal/1e3)
	put("netupdate_synthesis_seconds_total", "Total engine time.", "counter", st.SynthMSTotal/1e3)
	put("netupdate_synthesis_seconds_max", "Slowest synthesis so far.", "gauge", st.SynthMSMax/1e3)
	put("netupdate_plan_cache_hits_total", "Syntheses served from the verification-first plan cache.", "counter", float64(st.PlanCacheHits))
	put("netupdate_plan_cache_misses_total", "Syntheses that ran the full search with a cache attached.", "counter", float64(st.PlanCacheMisses))
	put("netupdate_plan_cache_verify_failures_total", "Cached plans that failed replay verification and were evicted.", "counter", float64(st.PlanCacheVerifyFailures))
	put("netupdate_plan_cache_evictions_total", "Plan-cache capacity evictions.", "counter", float64(st.PlanCacheEvictions))
	put("netupdate_plan_cache_entries", "Cached instances across all shared learning stores.", "gauge", float64(st.PlanCacheEntries))
	put("netupdate_learn_stores", "Shared cross-tenant learning stores held.", "gauge", float64(st.LearnStores))
}
