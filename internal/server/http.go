package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/obs"
)

// NewHandler builds the daemon's HTTP surface over a pool:
//
//	POST /v1/tenants                   register a scenario, returns {id}
//	POST /v1/tenants/{id}/synthesize   JSONL deltas in, JSONL plan lines out
//	GET  /v1/tenants/{id}/stats        per-tenant serving summary
//	GET  /metrics                      pool/queue/latency counters (Prometheus text)
//	GET  /healthz                      liveness
//
// The synthesize endpoint streams: each request-body line is one
// StreamDelta, answered in order by one Result line, flushed as it is
// produced — a controller can hold the connection open and read plans as
// they land. An optional ?timeout=DURATION caps each delta's synthesis
// (the request context still bounds the whole exchange).
func NewHandler(p *Pool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tenants", func(w http.ResponseWriter, r *http.Request) {
		handleRegister(p, w, r)
	})
	mux.HandleFunc("POST /v1/tenants/{id}/synthesize", func(w http.ResponseWriter, r *http.Request) {
		handleSynthesize(p, w, r)
	})
	mux.HandleFunc("GET /v1/tenants/{id}/stats", func(w http.ResponseWriter, r *http.Request) {
		handleStats(p, w, r)
	})
	mux.HandleFunc("GET /v1/tenants/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		handleSnapshotGet(p, w, r)
	})
	mux.HandleFunc("PUT /v1/tenants/{id}/snapshot", func(w http.ResponseWriter, r *http.Request) {
		handleSnapshotPut(p, w, r)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		handleMetrics(p, w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// httpError is the uniform JSON error envelope for non-streaming
// failures.
type httpError struct {
	Error     string `json:"error"`
	Retryable bool   `json:"retryable,omitempty"`
	// Line positions request-body decode errors.
	Line int `json:"line,omitempty"`
}

func writeError(w http.ResponseWriter, status int, err error, line int) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(httpError{Error: err.Error(), Retryable: Retryable(err), Line: line})
}

// statusOf maps pool errors to HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrPoolClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, core.ErrTimeout), errors.Is(err, core.ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, config.ErrBadDelta):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func handleRegister(p *Pool, w http.ResponseWriter, r *http.Request) {
	lines := config.NewLineCountingReader(r.Body)
	dec := json.NewDecoder(lines)
	dec.DisallowUnknownFields()
	var spec TenantSpec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("server: tenant spec: %w", err), lines.DecodeErrorLine(err, dec))
		return
	}
	info, err := p.Register(&spec)
	if err != nil {
		writeError(w, statusOf(err), err, 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if info.Created {
		w.WriteHeader(http.StatusCreated)
	}
	_ = json.NewEncoder(w).Encode(info)
}

func handleSynthesize(p *Pool, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !p.Lookup(id) {
		writeError(w, http.StatusNotFound, fmt.Errorf("%w: %s", ErrUnknownTenant, id), 0)
		return
	}
	var perDelta time.Duration
	if q := r.URL.Query().Get("timeout"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("server: bad timeout %q (want a positive Go duration)", q), 0)
			return
		}
		perDelta = d
	}

	// Every synthesize exchange carries a request id: the client's (or the
	// LB's) X-Netupdate-Request-Id if present, a freshly minted one
	// otherwise. It is echoed on the response before the first write and
	// propagated through the pool into each run's stats and trace.
	reqID := r.Header.Get(obs.RequestIDHeader)
	if reqID == "" {
		reqID = obs.NewRequestID()
	}
	w.Header().Set(obs.RequestIDHeader, reqID)
	// ?trace=1 attaches a per-request span recorder to each synthesis in
	// the stream; the exported span tree rides back on the Result line.
	tracing := r.URL.Query().Get("trace") == "1"

	// The endpoint interleaves request-body reads with response writes;
	// HTTP/1.x closes the body on the first write unless full duplex is
	// enabled (HTTP/2 is duplex natively and reports ErrNotSupported —
	// ignored, like the handler-doesn't-support case).
	_ = http.NewResponseController(w).EnableFullDuplex()
	lines := config.NewLineCountingReader(r.Body)
	dec := json.NewDecoder(lines)
	dec.DisallowUnknownFields()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)

	seq := 0
	for {
		var d streamRequest
		if err := dec.Decode(&d); err != nil {
			if err == io.EOF {
				return
			}
			// The body position is unreliable after a syntax error:
			// report the offending line and stop this request. The
			// connection stays usable and already-emitted results stand.
			seq++
			_ = enc.Encode(Result{
				Seq: seq, Tenant: id, Result: "error",
				Error: fmt.Sprintf("tenant %s: request body: %v", id, err),
				Line:  lines.DecodeErrorLine(err, dec),
			})
			return
		}
		seq++
		line := lines.LineAt(dec.InputOffset() - 1)
		lines.Prune(dec.InputOffset())
		ctx := obs.WithRequestID(r.Context(), reqID)
		if tracing {
			ctx = obs.WithTracing(ctx)
		}
		cancel := func() {}
		if perDelta > 0 {
			ctx, cancel = context.WithTimeout(ctx, perDelta)
		}
		var res Result
		if d.Ack != nil {
			plan, err := p.Ack(ctx, id, d.Ack)
			res = NewAckResult(seq, id, plan, err)
		} else {
			plan, err := p.Synthesize(ctx, id, &d.StreamDelta)
			res = NewResult(seq, id, plan, err)
			if err != nil && errors.Is(err, config.ErrBadDelta) {
				res.Line = line
			}
		}
		cancel()
		if encErr := enc.Encode(res); encErr != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleSnapshotGet exports a tenant's warm state as a portable binary
// session snapshot (the tenant-migration wire format; see DESIGN.md
// "Snapshots, shared arenas & sharding").
func handleSnapshotGet(p *Pool, w http.ResponseWriter, r *http.Request) {
	img, err := p.SnapshotTenant(r.Context(), r.PathValue("id"))
	if err != nil {
		writeError(w, statusOf(err), err, 0)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(img)))
	_, _ = w.Write(img)
}

// handleSnapshotPut installs a snapshot over a registered tenant —
// rejected images (corrupt, version-skewed, or from a different spec)
// leave the tenant untouched and report 409.
func handleSnapshotPut(p *Pool, w http.ResponseWriter, r *http.Request) {
	img, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("server: snapshot body: %w", err), 0)
		return
	}
	if err := p.InstallSnapshot(r.Context(), r.PathValue("id"), img); err != nil {
		status := statusOf(err)
		if errors.Is(err, core.ErrBadSnapshot) || errors.Is(err, core.ErrSnapshotVersion) ||
			errors.Is(err, core.ErrSnapshotMismatch) {
			status = http.StatusConflict
		}
		writeError(w, status, err, 0)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// maxSnapshotBytes bounds an uploaded snapshot body (1 GiB — far above
// any real session, but finite).
const maxSnapshotBytes = 1 << 30

func handleStats(p *Pool, w http.ResponseWriter, r *http.Request) {
	st, err := p.TenantStats(r.PathValue("id"))
	if err != nil {
		writeError(w, statusOf(err), err, 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(st)
}

// handleMetrics renders the pool's metric registry in the Prometheus
// text exposition format (hand-rolled: the repo takes no dependencies).
// Every family is registered at pool construction (see initMetrics), so
// the endpoint is a straight render.
func handleMetrics(p *Pool, w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p.Metrics().WritePrometheus(w)
}
