package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"netupdate/internal/config"
	"netupdate/internal/core"
)

// ServeStdio is the stdin/stdout serving surface: it reads a JSONL
// scenario stream (a config.StreamHeader, then one config.StreamDelta
// per line), registers the header as a tenant of the pool, serves every
// delta through Pool.Synthesize, and emits one Result line per delta on
// out. It is what `netupdate -stream` runs — the same pool, admission
// control, and wire format as the daemon, minus HTTP.
//
// Shutdown is graceful: when ctx is canceled (the CLI wires SIGINT and
// SIGTERM to it), ServeStdio stops accepting input, lets the in-flight
// synthesis finish, flushes its pending result line, and returns nil.
// Semantically invalid deltas (config.ErrBadDelta) are reported on their
// input line and skipped; only decode errors — after which the stream
// position is unreliable — are terminal, and they too are reported as a
// positioned Result line first.
func ServeStdio(ctx context.Context, in io.Reader, out io.Writer, errw io.Writer, p *Pool, opts core.Options, quiet bool) error {
	lines := config.NewLineCountingReader(in)
	dec := json.NewDecoder(lines)
	dec.DisallowUnknownFields()
	var h config.StreamHeader
	if err := dec.Decode(&h); err != nil {
		return fmt.Errorf("server: stream header (line %d): %w", lines.DecodeErrorLine(err, dec), err)
	}
	spec := &TenantSpec{StreamHeader: h, Options: OptionsSpecOf(opts)}
	info, err := p.Register(spec)
	if err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(errw, "stream %q: tenant %s, %d switches, %d classes\n",
			info.Name, info.ID, info.Switches, info.Classes)
	}

	// Decode on a separate goroutine so a signal interrupts the wait for
	// the next line, not just the synthesis between lines. The reader owns
	// dec/lines; after cancellation its last pending item is dropped and
	// the goroutine exits on the next read (or stays blocked on a silent
	// stdin until the process exits, holding nothing).
	type item struct {
		req   streamRequest
		line  int
		err   error
		errLn int
	}
	items := make(chan item)
	go func() {
		defer close(items)
		for {
			var it item
			if err := dec.Decode(&it.req); err != nil {
				if err != io.EOF {
					it.err = err
					it.errLn = lines.DecodeErrorLine(err, dec)
					select {
					case items <- it:
					case <-ctx.Done():
					}
				}
				return
			}
			it.line = lines.LineAt(dec.InputOffset() - 1)
			lines.Prune(dec.InputOffset())
			select {
			case items <- it:
			case <-ctx.Done():
				return
			}
		}
	}()

	enc := json.NewEncoder(out)
	seq := 0
	defer func() {
		if !quiet {
			fmt.Fprintf(errw, "stream done: %d syntheses served\n", seq)
		}
	}()
	for {
		var it item
		var ok bool
		select {
		case it, ok = <-items:
			if !ok {
				return nil // EOF
			}
		case <-ctx.Done():
			if !quiet {
				fmt.Fprintln(errw, "signal: stopped accepting input, draining")
			}
			return nil
		}
		seq++
		if it.err != nil {
			res := Result{
				Seq: seq, Tenant: info.ID, Result: "error",
				Error: fmt.Sprintf("tenant %s: stream: %v", info.ID, it.err),
				Line:  it.errLn,
			}
			if encErr := enc.Encode(res); encErr != nil {
				return encErr
			}
			return fmt.Errorf("server: tenant %s: stream delta %d (line %d): %w",
				info.ID, seq, it.errLn, it.err)
		}
		// The in-flight synthesis deliberately ignores ctx: a signal
		// stops intake, the current request finishes and its plan line is
		// flushed (the engine's own Options.Timeout still bounds it).
		var res Result
		if it.req.Ack != nil {
			plan, aerr := p.Ack(context.Background(), info.ID, it.req.Ack)
			res = NewAckResult(seq, info.ID, plan, aerr)
		} else {
			plan, serr := p.Synthesize(context.Background(), info.ID, &it.req.StreamDelta)
			res = NewResult(seq, info.ID, plan, serr)
			if serr != nil && errors.Is(serr, config.ErrBadDelta) {
				res.Line = it.line
			}
		}
		if err := enc.Encode(res); err != nil {
			return err
		}
	}
}
