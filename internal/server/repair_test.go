package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"netupdate/internal/bench"
	"netupdate/internal/core"
	"netupdate/internal/server"
)

// TestPoolAckRepair: the plan-step ack surface of the pool. Commit acks
// are bookkeeping; a failure report repairs the tenant's warm session
// from the reported committed state and returns the repair plan; invalid
// reports are rejected with the session intact.
func TestPoolAckRepair(t *testing.T) {
	loads, err := bench.MakeTenantLoads(1, 40, 2, server.OptionsSpec{Parallel: 1}, 17)
	if err != nil {
		t.Fatal(err)
	}
	p := server.NewPool(server.PoolOptions{Workers: 1})
	info, err := p.Register(loads[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Commit acks never need a session.
	if plan, err := p.Ack(ctx, info.ID, &server.StepAck{Step: 0}); err != nil || plan != nil {
		t.Fatalf("commit ack = (%v, %v), want (nil, nil)", plan, err)
	}
	// A failure report before any plan has nothing to repair from.
	if _, err := p.Ack(ctx, info.ID, &server.StepAck{Failed: true}); !errors.Is(err, core.ErrNoPlan) {
		t.Fatalf("pre-plan failure ack: err = %v, want core.ErrNoPlan", err)
	}

	plan, err := p.Synthesize(ctx, info.ID, &loads[0].Deltas[0])
	if err != nil {
		t.Fatal(err)
	}
	// A bogus committed set is rejected and the session stays usable.
	if _, err := p.Ack(ctx, info.ID, &server.StepAck{Failed: true, Committed: []int{99}}); !errors.Is(err, core.ErrBadCommit) {
		t.Fatalf("bad committed: err = %v, want core.ErrBadCommit", err)
	}
	// Nothing committed before the stall: the repair re-derives the
	// original plan from the initial configuration (the search is
	// deterministic at Parallel: 1).
	rep, err := p.Ack(ctx, info.ID, &server.StepAck{Failed: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.String() != plan.String() {
		t.Fatalf("zero-commit repair diverged:\nrepair %s\nplan   %s", rep, plan)
	}
	// A dependency-closed partial commit (one DAG root) repairs too.
	root := -1
	for i, ps := range plan.DAG.Preds {
		if len(ps) == 0 {
			root = i
			break
		}
	}
	if root < 0 {
		t.Fatalf("plan has no root node: %+v", plan.DAG)
	}
	rep2, err := p.Ack(ctx, info.ID, &server.StepAck{Failed: true, Committed: []int{root}})
	if err != nil {
		t.Fatal(err)
	}
	if rep2 == nil || rep2.Stats.RepairCommitted != 1 {
		t.Fatalf("partial-commit repair = %+v", rep2)
	}
	// The tenant serves the next delta from its realigned state.
	if _, err := p.Synthesize(ctx, info.ID, &loads[0].Deltas[1]); err != nil {
		t.Fatalf("tenant dead after repair: %v", err)
	}

	st := p.Stats()
	if st.StepAcks != 1 || st.Repairs != 2 || st.RepairFailures != 2 {
		t.Fatalf("pool stats = %+v", st)
	}
	ts, err := p.TenantStats(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Acks != 1 || ts.Repairs != 2 {
		t.Fatalf("tenant stats = %+v", ts)
	}
}

// TestPoolAckEvictedSession: a failure report against a cold-evicted
// session cannot be repaired (the warm crash-tracking state is gone) and
// says so with core.ErrNoPlan; the client falls back to a fresh delta.
func TestPoolAckEvictedSession(t *testing.T) {
	loads, err := bench.MakeTenantLoads(2, 40, 1, server.OptionsSpec{Parallel: 1}, 29)
	if err != nil {
		t.Fatal(err)
	}
	p := server.NewPool(server.PoolOptions{Workers: 1, MaxSessions: 1})
	ctx := context.Background()
	var ids []string
	for _, tl := range loads {
		info, err := p.Register(tl.Spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	if _, err := p.Synthesize(ctx, ids[0], &loads[0].Deltas[0]); err != nil {
		t.Fatal(err)
	}
	// Tenant 1's synthesis evicts tenant 0's session (budget 1).
	if _, err := p.Synthesize(ctx, ids[1], &loads[1].Deltas[0]); err != nil {
		t.Fatal(err)
	}
	_, aerr := p.Ack(ctx, ids[0], &server.StepAck{Failed: true})
	if !errors.Is(aerr, core.ErrNoPlan) || !strings.Contains(aerr.Error(), "evicted") {
		t.Fatalf("evicted failure ack: err = %v, want evicted + core.ErrNoPlan", aerr)
	}
	if st := p.Stats(); st.RepairFailures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestHTTPAckRepairStream: acks ride the synthesize stream — a plan
// line, an "acked" line for the commit, a "repair" plan line for the
// failure report, and the repair counters land in /metrics.
func TestHTTPAckRepairStream(t *testing.T) {
	ts, _ := startDaemon(t, server.PoolOptions{})
	info := register(t, ts, lineSpec)

	body := strings.Join([]string{
		`{"reroute":[{"class":"c","path":[0,2,3]}]}`,
		`{"ack":{"step":0}}`,
		`{"ack":{"failed":true}}`,
	}, "\n") + "\n"
	resp, err := http.Post(ts.URL+"/v1/tenants/"+info.ID+"/synthesize",
		"application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var results []server.Result
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r server.Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad result line %q: %v", sc.Text(), err)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Result != "plan" || len(results[0].Steps) == 0 {
		t.Fatalf("first = %+v", results[0])
	}
	if results[1].Result != "acked" || results[1].Seq != 2 {
		t.Fatalf("commit ack = %+v", results[1])
	}
	if results[2].Result != "repair" || len(results[2].Steps) == 0 ||
		results[2].Stats == nil || results[2].DAG == nil {
		t.Fatalf("repair = %+v", results[2])
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	buf := new(strings.Builder)
	if _, err := bufio.NewReader(mresp.Body).WriteTo(buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"netupdate_step_acks_total 1",
		"netupdate_repairs_total 1",
		"netupdate_repair_failures_total 0",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, buf)
		}
	}
}

// TestServeStdioAckRepair: the same ack lines work on the stdin/stdout
// surface.
func TestServeStdioAckRepair(t *testing.T) {
	in := strings.Join([]string{
		strings.TrimSpace(stdioStream[:strings.Index(stdioStream, "\n{\"reroute\"")]),
		`{"reroute":[{"class":"c","path":[0,2,3]}]}`,
		`{"ack":{"step":0}}`,
		`{"ack":{"failed":true}}`,
	}, "\n") + "\n"
	p := server.NewPool(server.PoolOptions{Workers: 1})
	var out, errw lockedBuffer
	if err := server.ServeStdio(context.Background(), strings.NewReader(in),
		&out, &errw, p, core.Options{}, true); err != nil {
		t.Fatal(err)
	}
	lines := out.lines()
	if len(lines) != 3 {
		t.Fatalf("lines = %q", lines)
	}
	var kinds []string
	for _, l := range lines {
		var r server.Result
		if err := json.Unmarshal([]byte(l), &r); err != nil {
			t.Fatalf("%q: %v", l, err)
		}
		kinds = append(kinds, r.Result)
	}
	if kinds[0] != "plan" || kinds[1] != "acked" || kinds[2] != "repair" {
		t.Fatalf("kinds = %v", kinds)
	}
}
