package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
)

// testSpec is a minimal diamond tenant: one class with two internally
// disjoint paths between switch 0 and 3.
func testSpec(name string) *TenantSpec {
	return &TenantSpec{
		StreamHeader: config.StreamHeader{
			Name: name,
			Topology: config.TopologyFile{
				Switches: 4,
				Links:    [][2]int{{0, 1}, {1, 3}, {0, 2}, {2, 3}},
				Hosts:    []config.HostFile{{ID: 100, Switch: 0}, {ID: 101, Switch: 3}},
			},
			Classes: []config.StreamClass{{
				Name: "c", Src: 100, Dst: 101,
				Path: []int{0, 1, 3}, Spec: "sw=0 -> F sw=3",
			}},
		},
	}
}

func flipDelta() *config.StreamDelta {
	return &config.StreamDelta{Reroute: []config.Reroute{{Class: "c", Path: []int{0, 2, 3}}}}
}

// TestQueueFullLoadShedding drives the admission controller through its
// bound deterministically: with a queue depth of 2, one request parked
// inside the engine (via the test seam) and one queued behind the tenant
// gate, the third admission attempt must shed with ErrQueueFull — and
// the parked requests must complete untouched once released.
func TestQueueFullLoadShedding(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 2})
	entered := make(chan string)
	release := make(chan struct{})
	p.beforeSynthesize = func(id string) {
		entered <- id
		<-release
	}
	info, err := p.Register(testSpec("shed"))
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		plan *core.Plan
		err  error
	}
	results := make(chan outcome, 2)
	issue := func() {
		plan, err := p.Synthesize(context.Background(), info.ID, flipDelta())
		results <- outcome{plan, err}
	}
	go issue() // A: admitted, holds gate+slot, parks in the seam
	<-entered
	go issue() // B: admitted, queued on the tenant gate
	waitPending(t, p, info.ID, 2)

	// C: the queue is at its bound; admission must shed without queuing.
	_, serr := p.Synthesize(context.Background(), info.ID, flipDelta())
	if !errors.Is(serr, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", serr)
	}
	if !Retryable(serr) {
		t.Fatal("queue-full must be retryable")
	}

	close(release) // A finishes; B takes the gate, parks, finds release closed
	<-entered
	for i := 0; i < 2; i++ {
		if out := <-results; out.err != nil {
			t.Fatalf("parked request %d failed: %v", i, out.err)
		}
	}
	st := p.Stats()
	if st.RejectedQueueFull != 1 || st.Plans != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// waitPending polls the tenant's admitted-request counter (internal test:
// there is no external signal for "queued behind the gate").
func waitPending(t *testing.T, p *Pool, id string, want int32) {
	t.Helper()
	p.mu.Lock()
	tn := p.tenants[id]
	p.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for tn.pending.Load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("pending = %d, want %d", tn.pending.Load(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueueWaitHonorsDeadline: a request expiring while queued behind the
// tenant gate reports core.ErrTimeout without ever running.
func TestQueueWaitHonorsDeadline(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 4})
	entered := make(chan string)
	release := make(chan struct{})
	p.beforeSynthesize = func(id string) {
		entered <- id
		<-release
	}
	info, err := p.Register(testSpec("expire"))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.Synthesize(context.Background(), info.ID, flipDelta())
		done <- err
	}()
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, serr := p.Synthesize(ctx, info.ID, flipDelta())
	if !errors.Is(serr, core.ErrTimeout) {
		t.Fatalf("err = %v, want core.ErrTimeout", serr)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("parked request failed: %v", err)
	}
	if st := p.Stats(); st.DeadlineExpired != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestOptionsSpecRoundTrip: the CLI flag set survives the spec encoding.
func TestOptionsSpecRoundTrip(t *testing.T) {
	in := core.Options{
		Checker:                core.CheckerNuSMV,
		RuleGranularity:        true,
		TwoSimple:              true,
		NoWaitRemoval:          true,
		NoDecomposition:        true,
		Parallelism:            3,
		FirstPlanWins:          true,
		NoCexLearning:          true,
		NoEarlyTermination:     true,
		NoHeuristicOrder:       true,
		MinimizeCompletionTime: true,
		Trace:                  true,
		Timeout:                500 * time.Microsecond, // sub-ms must survive
	}
	out, err := OptionsSpecOf(in).Build()
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip lost options:\nin  %+v\nout %+v", in, out)
	}
	if _, err := (OptionsSpec{Checker: "nope"}).Build(); err == nil {
		t.Fatal("unknown checker must be rejected")
	}
}

// TestFingerprintStability: equal specs share an id, different specs do
// not.
func TestFingerprintStability(t *testing.T) {
	a, err := testSpec("fp").Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testSpec("fp").Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("equal specs fingerprint differently: %s vs %s", a, b)
	}
	other := testSpec("fp")
	other.Options.Parallel = 2
	c, err := other.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different options must fingerprint differently")
	}
}

// TestHTTPQueueFull429: over the daemon surface, a shed request carries
// an in-band retryable error line; the HTTP pre-flight errors (unknown
// tenant) got their status codes in http_test.go. Queue-full inside a
// streaming response cannot change the status line — the Result line's
// retryable flag is the contract.
func TestHTTPQueueFull429(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1, QueueDepth: 1})
	entered := make(chan string)
	release := make(chan struct{})
	p.beforeSynthesize = func(id string) {
		entered <- id
		<-release
	}
	info, err := p.Register(testSpec("h429"))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(p))
	defer ts.Close()

	parked := make(chan error, 1)
	go func() {
		_, err := p.Synthesize(context.Background(), info.ID, flipDelta())
		parked <- err
	}()
	<-entered

	resp, err := http.Post(ts.URL+"/v1/tenants/"+info.ID+"/synthesize",
		"application/x-ndjson", strings.NewReader(`{"reroute":[{"class":"c","path":[0,2,3]}]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Result != "error" || !res.Retryable || !strings.Contains(res.Error, "queue full") {
		t.Fatalf("shed result = %+v", res)
	}
	close(release) // the shed request never reached the seam; only A parks
	if err := <-parked; err != nil {
		t.Fatalf("parked request failed: %v", err)
	}
}
