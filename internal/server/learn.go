package server

import (
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"netupdate/internal/core"
)

// DefaultMaxLearnStores bounds the shared learning stores a pool holds.
// Stores are keyed by learning fingerprint (topology + classes + engine
// options, tenant name excluded), so the bound is on distinct *scenario
// shapes*, not tenants; the least-recently-used store past it is dropped
// wholesale.
const DefaultMaxLearnStores = 256

// learnRegistry owns the pool's shared plan caches: every tenant whose
// spec hashes to the same learning fingerprint is attached to the same
// core.PlanCache, so one tenant's synthesized plans and learned state
// serve every tenant running the identical scenario shape. Safe for
// concurrent use; the caches themselves are concurrency-safe, so the
// registry lock covers only the map and LRU.
type learnRegistry struct {
	mu     sync.Mutex
	max    int
	stores map[string]*list.Element
	lru    *list.List // of *learnStore, front = most recently used
}

type learnStore struct {
	fp    string
	cache *core.PlanCache
}

func newLearnRegistry(max int) *learnRegistry {
	if max <= 0 {
		max = DefaultMaxLearnStores
	}
	return &learnRegistry{
		max:    max,
		stores: map[string]*list.Element{},
		lru:    list.New(),
	}
}

// get returns the shared cache for a learning fingerprint, creating it on
// first use and evicting the coldest store past the bound. Evicting a
// store does not detach sessions already holding its cache — they keep a
// working private cache until rebuilt — it only stops new attachments
// from sharing it.
func (r *learnRegistry) get(fp string) *core.PlanCache {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.stores[fp]; ok {
		r.lru.MoveToFront(el)
		return el.Value.(*learnStore).cache
	}
	st := &learnStore{fp: fp, cache: core.NewPlanCache(0)}
	r.stores[fp] = r.lru.PushFront(st)
	for r.lru.Len() > r.max {
		tail := r.lru.Back()
		r.lru.Remove(tail)
		delete(r.stores, tail.Value.(*learnStore).fp)
	}
	return st.cache
}

// totals aggregates every store's counters plus the store count.
func (r *learnRegistry) totals() (core.PlanCacheStats, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum core.PlanCacheStats
	for el := r.lru.Front(); el != nil; el = el.Next() {
		st := el.Value.(*learnStore).cache.Stats()
		sum.Hits += st.Hits
		sum.Misses += st.Misses
		sum.VerifyFailures += st.VerifyFailures
		sum.Evictions += st.Evictions
		sum.Entries += st.Entries
	}
	return sum, r.lru.Len()
}

// LearnSnapshot is the JSON image of a pool's shared learning state (the
// -learn-file format): every store's plan cache, keyed by learning
// fingerprint, so a restarted process resumes with the full fast path of
// its predecessor.
type LearnSnapshot struct {
	Version int                  `json:"version"`
	Stores  []LearnStoreSnapshot `json:"stores"`
}

// LearnStoreSnapshot is one persisted shared store.
type LearnStoreSnapshot struct {
	Fingerprint string                  `json:"fingerprint"`
	Cache       *core.PlanCacheSnapshot `json:"cache"`
}

// learnSnapshotVersion is the current LearnSnapshot format version.
const learnSnapshotVersion = 1

// SaveLearning writes the pool's shared learning state as JSON (most
// recently used store first). Counters are not persisted; a restored pool
// starts cold on stats but warm on plans.
func (p *Pool) SaveLearning(w io.Writer) error {
	p.learn.mu.Lock()
	snap := LearnSnapshot{Version: learnSnapshotVersion}
	for el := p.learn.lru.Front(); el != nil; el = el.Next() {
		st := el.Value.(*learnStore)
		snap.Stores = append(snap.Stores, LearnStoreSnapshot{
			Fingerprint: st.fp,
			Cache:       st.cache.Snapshot(),
		})
	}
	p.learn.mu.Unlock()
	enc := json.NewEncoder(w)
	if err := enc.Encode(&snap); err != nil {
		return fmt.Errorf("server: saving learning state: %w", err)
	}
	return nil
}

// LoadLearning merges a saved learning snapshot into the pool's shared
// stores. Entries already present win (they are fresher); stores are
// created as needed, so loading may run before or after tenants register
// — a tenant attaching later shares the restored cache by fingerprint.
func (p *Pool) LoadLearning(r io.Reader) error {
	var snap LearnSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("server: loading learning state: %w", err)
	}
	if snap.Version != learnSnapshotVersion {
		return fmt.Errorf("server: learning snapshot version %d, want %d", snap.Version, learnSnapshotVersion)
	}
	for i := range snap.Stores {
		st := &snap.Stores[i]
		if st.Fingerprint == "" || st.Cache == nil {
			continue
		}
		if err := p.learn.get(st.Fingerprint).Restore(st.Cache); err != nil {
			return fmt.Errorf("server: store %s: %w", st.Fingerprint, err)
		}
	}
	return nil
}
