package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRingDeterministicAndStable: independently built rings agree on
// placement regardless of insertion order, and removing one replica
// remaps only the keys it owned.
func TestRingDeterministicAndStable(t *testing.T) {
	replicas := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1 := NewRing(0)
	for _, rep := range replicas {
		r1.Add(rep)
	}
	r2 := NewRing(0)
	for i := len(replicas) - 1; i >= 0; i-- {
		r2.Add(replicas[i])
	}
	keys := make([]string, 200)
	owned := map[string]int{}
	for i := range keys {
		keys[i] = fmt.Sprintf("t%04x", i)
		o1, ok1 := r1.Owner(keys[i])
		o2, ok2 := r2.Owner(keys[i])
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("key %s: rings disagree (%q vs %q)", keys[i], o1, o2)
		}
		owned[o1]++
	}
	for _, rep := range replicas {
		if owned[rep] == 0 {
			t.Fatalf("replica %s owns nothing across 200 keys: %v", rep, owned)
		}
	}

	before := map[string]string{}
	for _, k := range keys {
		before[k], _ = r1.Owner(k)
	}
	r1.Remove(replicas[1])
	for _, k := range keys {
		after, ok := r1.Owner(k)
		if !ok {
			t.Fatal("ring emptied unexpectedly")
		}
		if before[k] != replicas[1] && after != before[k] {
			t.Fatalf("key %s moved from surviving replica %s to %s", k, before[k], after)
		}
		if after == replicas[1] {
			t.Fatalf("key %s still owned by removed replica", k)
		}
	}
}

// startReplica spins up one in-process netupdated replica.
func startReplica(t *testing.T) (*httptest.Server, *Pool) {
	t.Helper()
	p := NewPool(PoolOptions{Workers: 1})
	ts := httptest.NewServer(NewHandler(p))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = p.Close(context.Background()) })
	return ts, p
}

// synthLine streams one delta through a base URL and returns the result.
func synthLine(t *testing.T, base, id, delta string) Result {
	t.Helper()
	resp, err := http.Post(base+"/v1/tenants/"+id+"/synthesize",
		"application/x-ndjson", strings.NewReader(delta+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no result line (status %d)", resp.StatusCode)
	}
	var r Result
	if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
		t.Fatalf("bad result %q: %v", sc.Text(), err)
	}
	return r
}

// TestLBShardsAndMigrates: the full two-replica integration — tenants
// registered through the router spread across both replicas, stream
// through it transparently, and survive a drain of one replica with
// their warm state migrated to the survivor.
func TestLBShardsAndMigrates(t *testing.T) {
	tsA, poolA := startReplica(t)
	tsB, poolB := startReplica(t)
	lb, err := NewLB([]string{tsA.URL, tsB.URL}, 0)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(lb.Handler())
	defer front.Close()

	// Register enough tenants that both replicas get some.
	const tenants = 8
	ids := make([]string, tenants)
	for i := range ids {
		body := specJSON(t, testSpec(fmt.Sprintf("shard-%d", i)))
		resp, err := http.Post(front.URL+"/v1/tenants", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var info TenantInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register %d: status %d", i, resp.StatusCode)
		}
		ids[i] = info.ID
	}
	onA, onB := poolA.Stats().Tenants, poolB.Stats().Tenants
	if onA+onB != tenants || onA == 0 || onB == 0 {
		t.Fatalf("placement %d/%d across replicas, want both non-empty summing to %d", onA, onB, tenants)
	}

	// Stream one delta per tenant through the router and remember the
	// plans: migration must not change what each tenant is served next.
	flip := `{"reroute":[{"class":"c","path":[0,2,3]}]}`
	back := `{"reroute":[{"class":"c","path":[0,1,3]}]}`
	firstPlans := map[string]Result{}
	for _, id := range ids {
		r := synthLine(t, front.URL, id, flip)
		if r.Result != "plan" {
			t.Fatalf("tenant %s: %+v", id, r)
		}
		firstPlans[id] = r
	}

	// Drain replica B: its tenants move to A, snapshots included.
	req, _ := http.NewRequest(http.MethodDelete, front.URL+"/lb/replicas?url="+tsB.URL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var drained struct {
		Migrated int `json:"migrated"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&drained); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if drained.Migrated != onB {
		t.Fatalf("drained %d tenants, want %d", drained.Migrated, onB)
	}

	// Every tenant still streams through the router, now all on A, and
	// the migrated tenants resumed from their snapshots.
	for _, id := range ids {
		r := synthLine(t, front.URL, id, back)
		if r.Result != "plan" {
			t.Fatalf("post-drain tenant %s: %+v", id, r)
		}
	}
	if got := poolA.Stats().Tenants; got != tenants {
		t.Fatalf("survivor holds %d tenants, want %d", got, tenants)
	}
	var restores int64
	for _, id := range ids {
		if st, err := poolA.TenantStats(id); err == nil {
			restores += st.SnapshotRestores
		}
	}
	if restores < int64(onB) {
		t.Fatalf("migrated tenants restored %d snapshots, want >= %d", restores, onB)
	}

	body := metricsBody(t, front.URL)
	for _, want := range []string{
		"netupdate_lb_replicas 1",
		fmt.Sprintf("netupdate_lb_migrations_total %d", onB),
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("lb metrics missing %q:\n%s", want, body)
		}
	}

	// Draining the last replica with tenants placed is refused.
	req, _ = http.NewRequest(http.MethodDelete, front.URL+"/lb/replicas?url="+tsA.URL, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("last-replica drain: status %d, want 409", resp.StatusCode)
	}
}

// TestLBAddReplicaRebalances: growing the ring migrates the tenants
// whose ownership moved onto the new member.
func TestLBAddReplicaRebalances(t *testing.T) {
	tsA, poolA := startReplica(t)
	tsB, poolB := startReplica(t)
	lb, err := NewLB([]string{tsA.URL}, 0)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(lb.Handler())
	defer front.Close()

	const tenants = 8
	for i := 0; i < tenants; i++ {
		body := specJSON(t, testSpec(fmt.Sprintf("grow-%d", i)))
		resp, err := http.Post(front.URL+"/v1/tenants", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := poolA.Stats().Tenants; got != tenants {
		t.Fatalf("single replica holds %d, want %d", got, tenants)
	}

	resp, err := http.Post(front.URL+"/lb/replicas", "application/json",
		strings.NewReader(fmt.Sprintf(`{"url":%q}`, tsB.URL)))
	if err != nil {
		t.Fatal(err)
	}
	var added struct {
		Migrated int `json:"migrated"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&added); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if added.Migrated == 0 {
		t.Fatal("adding a replica moved no tenants")
	}
	if got := poolB.Stats().Tenants; got != added.Migrated {
		t.Fatalf("new replica holds %d tenants, want %d", got, added.Migrated)
	}
}
