package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"netupdate/internal/config"
	"netupdate/internal/obs"
)

// promScrape is one parsed /metrics exposition: HELP and TYPE per family
// plus every sample keyed by its full series name (labels included).
type promScrape struct {
	help, typ map[string]string
	samples   map[string]float64
}

// parseProm parses the Prometheus text format line by line, failing on
// any line that is neither a well-formed comment nor a sample belonging
// to a family with HELP and TYPE already declared.
func parseProm(t *testing.T, body string) promScrape {
	t.Helper()
	s := promScrape{help: map[string]string{}, typ: map[string]string{}, samples: map[string]float64{}}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if parts[1] == "HELP" {
				s.help[parts[2]] = parts[3]
			} else {
				s.typ[parts[2]] = parts[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed sample %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		// Histogram series carry a suffix over the family name; exact
		// family names win (netupdate_queue_wait_seconds_total is its own
		// counter, distinct from the netupdate_queue_wait_seconds histogram).
		if _, ok := s.typ[name]; !ok {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base, found := strings.CutSuffix(name, suf); found {
					if s.typ[base] == "histogram" {
						name = base
						break
					}
				}
			}
		}
		if s.typ[name] == "" || s.help[name] == "" {
			t.Fatalf("line %d: sample %q has no HELP/TYPE for family %q", ln+1, line, name)
		}
		s.samples[series] = val
	}
	return s
}

func scrapeMetrics(t *testing.T, url string) promScrape {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseProm(t, string(body))
}

// TestMetricsPrometheusFormat: /metrics renders every registered family
// with HELP and TYPE framing, the legacy counter names survive the
// registry conversion byte-for-name, the new latency histograms carry
// consistent bucket series, and counters are monotone across a workload.
func TestMetricsPrometheusFormat(t *testing.T) {
	p := NewPool(PoolOptions{Workers: 1})
	ts := httptest.NewServer(NewHandler(p))
	defer ts.Close()
	defer p.Close(context.Background())

	info, err := p.Register(testSpec("prom"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Synthesize(context.Background(), info.ID, flipDelta()); err != nil {
		t.Fatal(err)
	}
	first := scrapeMetrics(t, ts.URL)

	for _, fam := range []string{
		"netupdate_pool_tenants", "netupdate_pool_warm_sessions", "netupdate_pool_workers",
		"netupdate_requests_total", "netupdate_plans_total", "netupdate_infeasible_total",
		"netupdate_failures_total", "netupdate_bad_requests_total",
		"netupdate_rejected_queue_full_total", "netupdate_deadline_expired_total",
		"netupdate_canceled_total", "netupdate_step_acks_total", "netupdate_repairs_total",
		"netupdate_repair_failures_total", "netupdate_evictions_total",
		"netupdate_session_rebuilds_total", "netupdate_snapshot_restores_total",
		"netupdate_cold_rebuilds_total", "netupdate_snapshot_bytes", "netupdate_shared_arenas",
		"netupdate_queue_wait_seconds_total", "netupdate_synthesis_seconds_total",
		"netupdate_synthesis_seconds_max", "netupdate_plan_cache_hits_total",
		"netupdate_plan_cache_misses_total", "netupdate_plan_cache_verify_failures_total",
		"netupdate_plan_cache_evictions_total", "netupdate_plan_cache_entries",
		"netupdate_learn_stores",
		"netupdate_queue_wait_seconds", "netupdate_synthesis_hit_seconds",
		"netupdate_synthesis_miss_seconds", "netupdate_synthesis_repair_seconds",
		"netupdate_snapshot_restore_seconds", "netupdate_tenant_requests_total",
	} {
		if first.typ[fam] == "" {
			t.Errorf("family %s not exposed", fam)
		}
	}
	if n := first.samples["netupdate_synthesis_miss_seconds_count"]; n < 1 {
		t.Fatalf("synthesis_miss histogram recorded %g samples", n)
	}
	if n := first.samples["netupdate_queue_wait_seconds_count"]; n < 1 {
		t.Fatalf("queue_wait histogram recorded %g samples", n)
	}
	series := "netupdate_tenant_requests_total{tenant=\"" + info.ID + "\"}"
	if first.samples[series] != 1 {
		t.Fatalf("per-tenant series %s = %g, want 1", series, first.samples[series])
	}
	// The histogram's +Inf bucket equals its count.
	inf := first.samples[`netupdate_synthesis_miss_seconds_bucket{le="+Inf"}`]
	if inf != first.samples["netupdate_synthesis_miss_seconds_count"] {
		t.Fatalf("+Inf bucket %g != count %g", inf, first.samples["netupdate_synthesis_miss_seconds_count"])
	}

	// More workload: a plan, a bad delta, a commit ack. Every counter must
	// be monotone across the scrapes.
	back := &config.StreamDelta{Reroute: []config.Reroute{{Class: "c", Path: []int{0, 1, 3}}}}
	if _, err := p.Synthesize(context.Background(), info.ID, back); err != nil {
		t.Fatal(err)
	}
	bad := &config.StreamDelta{Reroute: []config.Reroute{{Class: "ghost", Path: []int{0, 1, 3}}}}
	if _, err := p.Synthesize(context.Background(), info.ID, bad); err == nil {
		t.Fatal("bad delta must fail")
	}
	if _, err := p.Ack(context.Background(), info.ID, &StepAck{Step: 0}); err != nil {
		t.Fatal(err)
	}
	second := scrapeMetrics(t, ts.URL)
	for series, v1 := range first.samples {
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		famTyp := first.typ[name]
		if famTyp == "" {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if base, found := strings.CutSuffix(name, suf); found && first.typ[base] == "histogram" {
					famTyp = "histogram"
					break
				}
			}
		}
		if famTyp == "gauge" {
			continue
		}
		v2, ok := second.samples[series]
		if !ok {
			t.Errorf("series %s vanished between scrapes", series)
			continue
		}
		if v2 < v1 {
			t.Errorf("series %s went backwards: %g -> %g", series, v1, v2)
		}
	}
	if second.samples["netupdate_requests_total"] != 3 { // ack admits without counting a synthesis request
		t.Fatalf("requests_total = %g", second.samples["netupdate_requests_total"])
	}
	if second.samples["netupdate_plans_total"] != 2 {
		t.Fatalf("plans_total = %g", second.samples["netupdate_plans_total"])
	}
	if second.samples["netupdate_bad_requests_total"] != 1 {
		t.Fatalf("bad_requests_total = %g", second.samples["netupdate_bad_requests_total"])
	}
	if second.samples["netupdate_step_acks_total"] != 1 {
		t.Fatalf("step_acks_total = %g", second.samples["netupdate_step_acks_total"])
	}
}

// TestLBPreservesResponseHeaders: the synthesize stream path through the
// router must deliver the replica's response headers — the NDJSON content
// type and the echoed request id — to the client unaltered.
func TestLBPreservesResponseHeaders(t *testing.T) {
	tsA, _ := startReplica(t)
	lb, err := NewLB([]string{tsA.URL}, 0)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(lb.Handler())
	defer front.Close()

	body := specJSON(t, testSpec("hdr"))
	resp, err := http.Post(front.URL+"/v1/tenants", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info TenantInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sresp, err := http.Post(front.URL+"/v1/tenants/"+info.ID+"/synthesize",
		"application/x-ndjson", strings.NewReader(`{"reroute":[{"class":"c","path":[0,2,3]}]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type through LB = %q", ct)
	}
	if sresp.Header.Get(obs.RequestIDHeader) == "" {
		t.Fatal("request id header dropped on the LB stream path")
	}
	sc := bufio.NewScanner(sresp.Body)
	if !sc.Scan() {
		t.Fatal("no result line through LB")
	}
	var res Result
	if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Result != "plan" {
		t.Fatalf("result = %+v", res)
	}
}

// TestTraceThroughLB is the end-to-end request-id acceptance check: a
// ?trace=1 synthesize through the router returns a span tree whose root
// carries exactly the request id the LB minted (echoed on the response
// header), and the same id lands in the result's stats.
func TestTraceThroughLB(t *testing.T) {
	tsA, _ := startReplica(t)
	lb, err := NewLB([]string{tsA.URL}, 0)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(lb.Handler())
	defer front.Close()

	body := specJSON(t, testSpec("traced"))
	resp, err := http.Post(front.URL+"/v1/tenants", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var info TenantInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	sresp, err := http.Post(front.URL+"/v1/tenants/"+info.ID+"/synthesize?trace=1",
		"application/x-ndjson", strings.NewReader(`{"reroute":[{"class":"c","path":[0,2,3]}]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	reqID := sresp.Header.Get(obs.RequestIDHeader)
	if reqID == "" {
		t.Fatal("no request id echoed through the LB")
	}
	sc := bufio.NewScanner(sresp.Body)
	if !sc.Scan() {
		t.Fatal("no result line")
	}
	var res Result
	if err := json.Unmarshal(sc.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Result != "plan" || res.Trace == nil {
		t.Fatalf("traced result = %+v", res)
	}
	if res.Trace.RequestID != reqID {
		t.Fatalf("trace request id %q != echoed header %q", res.Trace.RequestID, reqID)
	}
	ri := res.Trace.Root()
	if ri < 0 || res.Trace.Spans[ri].Name != "synthesize" {
		t.Fatalf("root span = %+v", res.Trace.Spans[ri])
	}
	if res.Stats == nil || res.Stats.RequestID != reqID {
		t.Fatalf("stats request id = %+v", res.Stats)
	}
	if res.Stats.VerifyMS <= 0 || res.Stats.SearchMS <= 0 {
		t.Fatalf("phase durations missing on the wire: %+v", res.Stats)
	}

	// An untraced request on the same tenant carries no trace.
	sresp2, err := http.Post(front.URL+"/v1/tenants/"+info.ID+"/synthesize",
		"application/x-ndjson", strings.NewReader(`{"reroute":[{"class":"c","path":[0,1,3]}]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp2.Body.Close()
	sc2 := bufio.NewScanner(sresp2.Body)
	if !sc2.Scan() {
		t.Fatal("no second result line")
	}
	var res2 Result
	if err := json.Unmarshal(sc2.Bytes(), &res2); err != nil {
		t.Fatal(err)
	}
	if res2.Trace != nil {
		t.Fatalf("untraced request carried %d spans", len(res2.Trace.Spans))
	}
}
