package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"netupdate/internal/core"
	"netupdate/internal/kripke"
	"netupdate/internal/mc"
	"netupdate/internal/topology"
)

// DefaultMaxArenaStores bounds the shared arena entries a pool holds.
// Entries are keyed by topology fingerprint, so the bound is on distinct
// network shapes, not tenants.
const DefaultMaxArenaStores = 256

// arenaRegistry owns the pool's shared session resources: every tenant
// whose topology hashes to the same fingerprint is built over the same
// immutable kripke.Arena (state ids, port/host maps, sinkhole states)
// and the same mc.Warmth cache (LTL closures and interned label tables).
// Both structures are copy-on-write from the session's point of view —
// sessions layer their own mutable transition relations and label arrays
// on top — so identically-shaped tenants deduplicate the class-independent
// state space instead of rebuilding it per session. Safe for concurrent
// use; Arena and Warmth are themselves concurrency-safe, so the registry
// lock covers only the map and LRU.
type arenaRegistry struct {
	mu     sync.Mutex
	max    int
	stores map[string]*list.Element
	lru    *list.List // of *arenaStore, front = most recently used
}

type arenaStore struct {
	fp     string
	arena  *kripke.Arena
	warmth *mc.Warmth
}

func newArenaRegistry(max int) *arenaRegistry {
	if max <= 0 {
		max = DefaultMaxArenaStores
	}
	return &arenaRegistry{
		max:    max,
		stores: map[string]*list.Element{},
		lru:    list.New(),
	}
}

// get returns the shared resources for a topology fingerprint, building
// the arena on first use and evicting the coldest entry past the bound.
// Evicting an entry does not detach sessions already sharing its arena —
// they keep working — it only stops new sessions from joining it.
func (r *arenaRegistry) get(fp string, topo *topology.Topology) core.SessionResources {
	r.mu.Lock()
	defer r.mu.Unlock()
	if el, ok := r.stores[fp]; ok {
		r.lru.MoveToFront(el)
		st := el.Value.(*arenaStore)
		return core.SessionResources{Arena: st.arena, Warmth: st.warmth}
	}
	st := &arenaStore{fp: fp, arena: kripke.NewArena(topo), warmth: mc.NewWarmth()}
	r.stores[fp] = r.lru.PushFront(st)
	for r.lru.Len() > r.max {
		tail := r.lru.Back()
		r.lru.Remove(tail)
		delete(r.stores, tail.Value.(*arenaStore).fp)
	}
	return core.SessionResources{Arena: st.arena, Warmth: st.warmth}
}

// size reports the number of shared entries held.
func (r *arenaRegistry) size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// TopologyFingerprint keys the pool's shared arena registry: the hash of
// the canonical JSON encoding of the topology alone, so tenants whose
// specs differ in classes, options, or name — but describe the same
// network — share one state arena and one label-table cache.
func (s *TenantSpec) TopologyFingerprint() (string, error) {
	b, err := json.Marshal(&s.Topology)
	if err != nil {
		return "", fmt.Errorf("server: fingerprinting topology: %w", err)
	}
	sum := sha256.Sum256(b)
	return "a" + hex.EncodeToString(sum[:8]), nil
}
