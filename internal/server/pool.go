package server

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netupdate/internal/config"
	"netupdate/internal/core"
	"netupdate/internal/obs"
)

// Pool defaults.
const (
	// DefaultMaxSessions is the warm-session budget when
	// PoolOptions.MaxSessions is zero.
	DefaultMaxSessions = 64
	// DefaultQueueDepth is the per-tenant outstanding-request bound when
	// PoolOptions.QueueDepth is zero.
	DefaultQueueDepth = 8
)

// PoolOptions is pool-level serving policy; per-tenant engine options
// arrive with each TenantSpec.
type PoolOptions struct {
	// Workers is the global synthesis budget: at most this many
	// syntheses run at once across all tenants. Zero means one per CPU.
	// (Each synthesis may itself parallelize per the tenant's Parallel
	// option; operators sizing a box should budget Workers x Parallel.)
	Workers int
	// MaxSessions bounds the warm sessions held at once; the
	// least-recently-used idle session beyond it is evicted and rebuilt
	// from its tenant spec on the next request. Zero means
	// DefaultMaxSessions; negative means unbounded.
	MaxSessions int
	// QueueDepth bounds each tenant's outstanding requests (running +
	// queued); requests beyond it are shed with ErrQueueFull. Zero means
	// DefaultQueueDepth.
	QueueDepth int
	// DefaultTimeout is applied as the request deadline when the caller's
	// context has none. Zero means no default.
	DefaultTimeout time.Duration
}

func (o PoolOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o PoolOptions) maxSessions() int {
	switch {
	case o.MaxSessions > 0:
		return o.MaxSessions
	case o.MaxSessions < 0:
		return int(^uint(0) >> 1) // unbounded
	}
	return DefaultMaxSessions
}

func (o PoolOptions) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return DefaultQueueDepth
}

// tenant is the pool's runtime state for one registered scenario.
//
// Locking: the pool mutex guards the tenant map, the LRU list, and every
// tenant's sess/elem fields. The per-tenant gate (a 1-slot semaphore)
// serializes synthesis — core.Session is single-flight — and also
// protects cur, which only advances while the gate is held. Eviction
// takes a tenant's gate non-blockingly, so a session is never torn down
// under a running synthesis.
type tenant struct {
	id   string
	spec *TenantSpec
	base *config.StreamBase
	opts core.Options

	gate    chan struct{} // cap 1: the single-flight session lock
	pending atomic.Int32  // admitted requests (running + queued)

	// learnID keys the pool's shared plan cache this tenant attaches to
	// (empty when the tenant opted out via noPlanCache); survives
	// eviction so rebuilds re-attach the same store.
	learnID string
	// arenaFP keys the pool's shared arena registry: tenants with the
	// same topology share one kripke.Arena and one warmth cache.
	arenaFP string

	cacheHits, cacheMisses atomic.Int64

	cur  *config.Config // current configuration; survives eviction
	sess *core.Session  // nil when cold
	elem *list.Element  // position in the pool LRU; nil when cold
	// snap is the session snapshot captured at eviction (nil when the
	// capture failed or after a restore consumed it); guarded by the pool
	// mutex like sess. It makes eviction cheap to undo: the next request
	// restores the warm state instead of rebuilding and re-warming it.
	snap []byte

	snapRestores atomic.Int64 // rebuilds served by snapshot restore

	runs, plans, failures atomic.Int64
	acks, repairs         atomic.Int64
	// builds counts session constructions; every one past the first is a
	// rebuild after eviction.
	builds  atomic.Int64
	lastNS  atomic.Int64
	totalNS atomic.Int64
}

// Pool is the multi-tenant synthesis service: it owns one warm session
// per hot tenant, admits requests against bounded per-tenant queues,
// schedules them over a global worker budget, and evicts cold sessions
// under an LRU budget. All methods are safe for concurrent use.
type Pool struct {
	opts  PoolOptions
	slots chan struct{} // global worker budget

	mu       sync.Mutex // tenants, lru, closed, inflight.Add vs Close
	tenants  map[string]*tenant
	lru      *list.List // of *tenant, front = hottest; warm tenants only
	closed   bool
	inflight sync.WaitGroup

	// learn holds the shared verification-first plan caches, keyed by
	// learning fingerprint (see learn.go); tenants with the same scenario
	// shape share one cache across the pool and across restarts
	// (SaveLearning/LoadLearning).
	learn *learnRegistry

	// arenas holds the shared immutable state arenas and label-table
	// caches, keyed by topology fingerprint (see arena.go); tenants with
	// the same network shape share them copy-on-write.
	arenas *arenaRegistry

	m poolMetrics

	// beforeSynthesize is a test seam invoked while the tenant gate and a
	// worker slot are held, just before the engine runs. Nil in
	// production.
	beforeSynthesize func(tenantID string)
}

// NewPool builds an empty pool.
func NewPool(opts PoolOptions) *Pool {
	p := &Pool{
		opts:    opts,
		slots:   make(chan struct{}, opts.workers()),
		tenants: map[string]*tenant{},
		lru:     list.New(),
		learn:   newLearnRegistry(0),
		arenas:  newArenaRegistry(0),
	}
	p.initMetrics()
	return p
}

// Register validates a tenant spec, derives its fingerprint id, and
// builds the tenant's warm session (verifying the initial configuration
// against every class specification). Registering an already-known
// fingerprint is idempotent: the existing tenant is returned with
// Created=false and its warm state untouched.
func (p *Pool) Register(spec *TenantSpec) (*TenantInfo, error) {
	id, err := spec.Fingerprint()
	if err != nil {
		return nil, err
	}
	opts, err := spec.Options.Build()
	if err != nil {
		return nil, err
	}
	base, err := spec.StreamHeader.Build()
	if err != nil {
		return nil, err
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if t, ok := p.tenants[id]; ok {
		info := p.infoLocked(t, false)
		p.mu.Unlock()
		return info, nil
	}
	p.mu.Unlock()

	// Pre-warm outside the pool lock: session construction verifies the
	// initial configuration and can be expensive. The tenant is published
	// only after it succeeds, so a returned id is always servable — a
	// concurrent duplicate registration at worst builds a session it then
	// discards. The session is built over the pool's shared arena and
	// warmth for this topology shape, so identically-shaped tenants
	// deduplicate the class-independent state space.
	arenaFP, err := spec.TopologyFingerprint()
	if err != nil {
		return nil, err
	}
	sess, err := core.NewSessionWith(base.Topo, base.Init, base.Specs, opts,
		p.arenas.get(arenaFP, base.Topo))
	if err != nil {
		return nil, fmt.Errorf("server: tenant %s: %w", id, err)
	}
	t := &tenant{
		id:      id,
		spec:    spec,
		base:    base,
		opts:    opts,
		arenaFP: arenaFP,
		gate:    make(chan struct{}, 1),
		cur:     base.Init,
	}
	// Attach the shared plan cache: tenants whose specs differ only by
	// name learn from — and replay-verify against — each other's runs.
	if !opts.NoPlanCache {
		learnID, lerr := spec.LearnFingerprint()
		if lerr != nil {
			return nil, lerr
		}
		t.learnID = learnID
		sess.SetCache(p.learn.get(learnID))
	}
	t.builds.Add(1)

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrPoolClosed
	}
	if existing, ok := p.tenants[id]; ok {
		info := p.infoLocked(existing, false)
		p.mu.Unlock()
		return info, nil // lost the race; drop our duplicate session
	}
	t.sess = sess
	t.elem = p.lru.PushFront(t)
	p.tenants[id] = t
	p.evictLocked()
	info := p.infoLocked(t, true)
	p.mu.Unlock()
	return info, nil
}

func (p *Pool) infoLocked(t *tenant, created bool) *TenantInfo {
	return &TenantInfo{
		ID:       t.id,
		Created:  created,
		Name:     t.base.Name,
		Classes:  len(t.base.Specs),
		Switches: t.base.Topo.NumSwitches(),
	}
}

// Lookup reports whether a tenant id is registered.
func (p *Pool) Lookup(id string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.tenants[id]
	return ok
}

// Synthesize serves one request: the tenant's current configuration is
// advanced by the delta and a plan to reach it is synthesized on the
// tenant's warm session. Admission is two-staged — the bounded per-tenant
// queue sheds overload with ErrQueueFull before any queuing, then the
// request waits (under its deadline) for the tenant's single-flight gate
// and a global worker slot. The context deadline propagates into the
// engine; when the caller's context has none, PoolOptions.DefaultTimeout
// is applied. Failed syntheses (including core.ErrNoOrdering and
// deadline expiry) leave the tenant at its previous configuration.
func (p *Pool) Synthesize(ctx context.Context, id string, delta *config.StreamDelta) (*core.Plan, error) {
	p.m.requests.Inc()
	t, err := p.admit(id)
	if err != nil {
		return nil, err
	}
	defer p.inflight.Done()
	defer t.pending.Add(-1)
	p.m.tenantRequests.With(t.id).Inc()

	// Every admitted request carries a request id: the daemon propagates
	// the client's (or the LB's) X-Netupdate-Request-Id into the context,
	// and direct API callers get one minted here. The engine stamps it on
	// the run's stats and trace.
	if obs.RequestIDFrom(ctx) == "" {
		ctx = obs.WithRequestID(ctx, obs.NewRequestID())
	}

	if p.opts.DefaultTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, p.opts.DefaultTimeout)
			defer cancel()
		}
	}

	// Tenant gate first (sessions are single-flight), then a worker slot
	// — never the reverse, so a tenant's queued requests cannot hog the
	// global budget while waiting on their own serialization.
	enqueued := time.Now()
	select {
	case t.gate <- struct{}{}:
	case <-ctx.Done():
		return nil, p.expireErr(ctx, t)
	}
	defer func() { <-t.gate }()
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, p.expireErr(ctx, t)
	}
	defer func() { <-p.slots }()
	p.m.queueWait.Observe(time.Since(enqueued))

	if hook := p.beforeSynthesize; hook != nil {
		hook(t.id)
	}

	target, err := t.base.Apply(t.cur, delta)
	if err != nil {
		p.m.badRequests.Inc()
		return nil, fmt.Errorf("server: tenant %s: %w", t.id, err)
	}

	sess, err := p.ensureWarm(t)
	if err != nil {
		p.m.failures.Inc()
		t.failures.Add(1)
		return nil, fmt.Errorf("server: tenant %s: session rebuild: %w", t.id, err)
	}

	// A ?trace=1 request gets a per-request span recorder attached for
	// exactly this run (the gate is held, so no other request races the
	// session) — unless the tenant's options already hold a persistent one.
	if obs.TracingFrom(ctx) && sess.Trace() == nil {
		sess.SetTrace(obs.NewTrace(0))
		defer sess.SetTrace(nil)
	}

	start := time.Now()
	plan, serr := sess.SynthesizeContext(ctx, target)
	elapsed := time.Since(start)
	t.runs.Add(1)
	t.lastNS.Store(elapsed.Nanoseconds())
	t.totalNS.Add(elapsed.Nanoseconds())
	hit := false
	if sess.Cache() != nil && (serr == nil || isInfeasible(serr)) {
		// Only completed runs vote: an expired request's LastStats may
		// belong to an earlier run.
		hit = sess.LastStats().CacheHit
		if hit {
			t.cacheHits.Add(1)
		} else {
			t.cacheMisses.Add(1)
		}
	}
	if hit {
		p.m.synthHit.Observe(elapsed)
	} else {
		p.m.synthMiss.Observe(elapsed)
	}
	switch {
	case serr == nil:
		t.cur = target
		t.plans.Add(1)
		p.m.plans.Inc()
		return plan, nil
	case isInfeasible(serr):
		p.m.infeasible.Inc()
	case isExpiry(serr):
		p.countExpiry(serr)
	default:
		p.m.failures.Inc()
	}
	t.failures.Add(1)
	return nil, fmt.Errorf("server: tenant %s: %w", t.id, serr)
}

// Ack records one plan-step acknowledgement for a tenant. Commit acks
// (Failed false) are bookkeeping only and return (nil, nil) without
// queuing. Failure reports trigger repair: under the tenant's gate and a
// global worker slot — repair is a synthesis — the warm session
// resynthesizes from the reported committed state (core.Session.Repair,
// with its 2-simple and scoped-two-phase fallback ladder armed) back to
// the stranded target, and the repair plan is returned. On success the
// tenant's current configuration is realigned with the session. A tenant
// whose session was evicted since the plan was issued cannot repair (the
// partially-committed state died with the session) and reports
// core.ErrNoPlan; clients fall back to requesting a fresh delta from the
// crash state they know.
func (p *Pool) Ack(ctx context.Context, id string, ack *StepAck) (*core.Plan, error) {
	t, err := p.admit(id)
	if err != nil {
		return nil, err
	}
	defer p.inflight.Done()
	defer t.pending.Add(-1)

	if !ack.Failed {
		t.acks.Add(1)
		p.m.acks.Inc()
		return nil, nil
	}

	if obs.RequestIDFrom(ctx) == "" {
		ctx = obs.WithRequestID(ctx, obs.NewRequestID())
	}

	if p.opts.DefaultTimeout > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, p.opts.DefaultTimeout)
			defer cancel()
		}
	}
	select {
	case t.gate <- struct{}{}:
	case <-ctx.Done():
		return nil, p.expireErr(ctx, t)
	}
	defer func() { <-t.gate }()
	select {
	case p.slots <- struct{}{}:
	case <-ctx.Done():
		return nil, p.expireErr(ctx, t)
	}
	defer func() { <-p.slots }()

	p.mu.Lock()
	sess := t.sess
	if sess != nil {
		p.lru.MoveToFront(t.elem)
	}
	p.mu.Unlock()
	if sess == nil {
		p.m.repairFailures.Inc()
		t.failures.Add(1)
		return nil, fmt.Errorf("server: tenant %s: session evicted, cannot repair: %w", t.id, core.ErrNoPlan)
	}

	if obs.TracingFrom(ctx) && sess.Trace() == nil {
		sess.SetTrace(obs.NewTrace(0))
		defer sess.SetTrace(nil)
	}

	start := time.Now()
	plan, rerr := sess.RepairContext(ctx, ack.Committed, nil)
	elapsed := time.Since(start)
	t.runs.Add(1)
	t.lastNS.Store(elapsed.Nanoseconds())
	t.totalNS.Add(elapsed.Nanoseconds())
	p.m.synthRepair.Observe(elapsed)
	if rerr != nil {
		p.m.repairFailures.Inc()
		t.failures.Add(1)
		return nil, fmt.Errorf("server: tenant %s: repair: %w", t.id, rerr)
	}
	// The session rebound itself to the crash state and advanced to the
	// plan's target; realign the tenant's view.
	t.cur = sess.Current()
	t.repairs.Add(1)
	p.m.repairs.Inc()
	return plan, nil
}

// admit performs queue admission: tenant lookup, closed check, the
// bounded pending counter, and in-flight accounting for drain. On
// success the caller owns one pending slot and one inflight token.
func (p *Pool) admit(id string) (*tenant, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrPoolClosed
	}
	t, ok := p.tenants[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTenant, id)
	}
	depth := int32(p.opts.queueDepth())
	for {
		n := t.pending.Load()
		if n >= depth {
			p.m.rejectedQueue.Inc()
			return nil, fmt.Errorf("%w (tenant %s, %d outstanding)", ErrQueueFull, t.id, n)
		}
		if t.pending.CompareAndSwap(n, n+1) {
			break
		}
	}
	p.inflight.Add(1)
	return t, nil
}

// expireErr maps a context that fired while the request was queued.
func (p *Pool) expireErr(ctx context.Context, t *tenant) error {
	err := ctxQueueErr(ctx)
	p.countExpiry(err)
	t.failures.Add(1)
	return fmt.Errorf("server: tenant %s: request expired while queued: %w", t.id, err)
}

func (p *Pool) countExpiry(err error) {
	if isCanceled(err) {
		p.m.canceled.Inc()
	} else {
		p.m.expired.Inc()
	}
}

func ctxQueueErr(ctx context.Context) error {
	if ctx.Err() == context.DeadlineExceeded {
		return core.ErrTimeout
	}
	return core.ErrCanceled
}

func isInfeasible(err error) bool { return errors.Is(err, core.ErrNoOrdering) }

func isExpiry(err error) bool {
	return errors.Is(err, core.ErrTimeout) || errors.Is(err, core.ErrCanceled)
}

func isCanceled(err error) bool { return errors.Is(err, core.ErrCanceled) }

// ensureWarm returns the tenant's session, rebuilding it when cold, and
// refreshes the tenant's LRU position. Must be called with the tenant
// gate held. An evicted tenant is restored from the snapshot captured at
// eviction — orders of magnitude cheaper than a cold build, since the
// shared arena, recorded transition relations, and interned labels skip
// state enumeration, table application, and relabeling — and falls back
// to a cold build from the stored spec when the snapshot is missing,
// rejected, or out of step with the tenant's configuration. A build
// beyond the budget evicts the least-recently-used idle session.
func (p *Pool) ensureWarm(t *tenant) (*core.Session, error) {
	p.mu.Lock()
	if t.sess != nil {
		p.lru.MoveToFront(t.elem)
		sess := t.sess
		p.mu.Unlock()
		return sess, nil
	}
	snap := t.snap
	p.mu.Unlock()

	// Build outside the pool lock: construction rebuilds every per-class
	// structure and may take longer than other tenants can wait. The gate
	// keeps this single-flight per tenant (t.cur cannot move under us).
	res := p.arenas.get(t.arenaFP, t.base.Topo)
	var sess *core.Session
	restored := false
	if len(snap) > 0 {
		restoreStart := time.Now()
		if s2, err := core.RestoreSessionWith(t.base.Topo, t.base.Specs, t.opts, snap, res); err == nil {
			if diff := config.Diff(s2.Current(), t.cur); len(diff) == 0 {
				sess, restored = s2, true
				p.m.snapRestore.Observe(time.Since(restoreStart))
			}
		}
	}
	if sess == nil {
		var err error
		sess, err = core.NewSessionWith(t.base.Topo, t.cur, t.base.Specs, t.opts, res)
		if err != nil {
			return nil, err
		}
	}
	p.attachLearning(t, sess, restored)
	if t.builds.Add(1) > 1 {
		p.m.rebuilds.Inc()
	}
	if restored {
		t.snapRestores.Add(1)
		p.m.snapshotRestores.Inc()
	}

	p.mu.Lock()
	t.snap = nil // consumed (or superseded by the fresh session)
	t.sess = sess
	t.elem = p.lru.PushFront(t)
	p.evictLocked()
	p.mu.Unlock()
	return sess, nil
}

// attachLearning points a rebuilt session at the tenant's shared plan
// cache. A restored session carries the cache image embedded in its
// snapshot; its entries are merged into the shared store first (existing
// entries win — they are at least as fresh), which matters when the
// snapshot crossed processes via tenant migration.
func (p *Pool) attachLearning(t *tenant, sess *core.Session, restored bool) {
	if t.learnID == "" {
		return
	}
	shared := p.learn.get(t.learnID)
	if restored {
		if c := sess.Cache(); c != nil {
			_ = shared.Restore(c.Snapshot())
		}
	}
	sess.SetCache(shared)
}

// evictLocked enforces the warm-session budget: walk the LRU from the
// cold end, dropping sessions whose tenants are idle (their gate can be
// taken without blocking) until the budget holds. Busy tenants are
// skipped — a session is never torn down mid-synthesis — so the budget is
// soft under extreme concurrency and re-enforced as gates free up. Each
// evicted session leaves a compact snapshot behind so the next request
// restores warm state instead of paying a cold rebuild; a failed capture
// leaves no snapshot and the tenant rebuilds cold.
func (p *Pool) evictLocked() {
	budget := p.opts.maxSessions()
	for e := p.lru.Back(); e != nil && p.lru.Len() > budget; {
		prev := e.Prev()
		t := e.Value.(*tenant)
		select {
		case t.gate <- struct{}{}:
			t.snap, _ = t.sess.Snapshot()
			t.sess = nil
			t.elem = nil
			p.lru.Remove(e)
			p.m.evictions.Inc()
			<-t.gate
		default:
			// In flight (or its caller holds the gate): skip.
		}
		e = prev
	}
}

// TenantStats returns one tenant's serving summary.
func (p *Pool) TenantStats(id string) (*TenantStats, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t, ok := p.tenants[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownTenant, id)
	}
	st := &TenantStats{
		ID:       t.id,
		Name:     t.base.Name,
		Classes:  len(t.base.Specs),
		Switches: t.base.Topo.NumSwitches(),
		Warm:     t.sess != nil,
		Pending:  int(t.pending.Load()),
		Runs:     t.runs.Load(),
		Plans:    t.plans.Load(),
		Failures: t.failures.Load(),
		Acks:     t.acks.Load(),
		Repairs:  t.repairs.Load(),
	}
	if b := t.builds.Load(); b > 1 {
		st.Rebuilds = b - 1
	}
	st.SnapshotRestores = t.snapRestores.Load()
	st.ColdRebuilds = st.Rebuilds - st.SnapshotRestores
	st.SnapshotBytes = len(t.snap)
	st.CacheHits = t.cacheHits.Load()
	st.CacheMisses = t.cacheMisses.Load()
	st.LastSynthMS = float64(t.lastNS.Load()) / 1e6
	if st.Runs > 0 {
		st.MeanSynthMS = float64(t.totalNS.Load()) / 1e6 / float64(st.Runs)
	}
	return st, nil
}

// PoolStats is the pool-wide serving summary behind GET /metrics.
type PoolStats struct {
	Tenants      int   `json:"tenants"`
	WarmSessions int   `json:"warmSessions"`
	Workers      int   `json:"workers"`
	Requests     int64 `json:"requests"`
	Plans        int64 `json:"plans"`
	Infeasible   int64 `json:"infeasible"`
	Failures     int64 `json:"failures"`
	BadRequests  int64 `json:"badRequests"`
	// RejectedQueueFull counts load-shed admissions (ErrQueueFull).
	RejectedQueueFull int64 `json:"rejectedQueueFull"`
	// DeadlineExpired counts requests whose deadline fired (queued or
	// mid-search); Canceled counts outright context cancellations.
	DeadlineExpired int64 `json:"deadlineExpired"`
	Canceled        int64 `json:"canceled"`
	Evictions       int64 `json:"evictions"`
	SessionRebuilds int64 `json:"sessionRebuilds"`
	// SnapshotRestores counts rebuilds served from an eviction-time
	// snapshot; ColdRebuilds are the rest (missing, rejected, or stale
	// snapshots). SnapshotBytesHeld is the total size of snapshots
	// currently held for evicted tenants; SharedArenas counts the
	// distinct topology shapes whose state arenas tenants share.
	SnapshotRestores  int64 `json:"snapshotRestores"`
	ColdRebuilds      int64 `json:"coldRebuilds"`
	SnapshotBytesHeld int64 `json:"snapshotBytesHeld"`
	SharedArenas      int   `json:"sharedArenas"`
	// StepAcks counts recorded plan-step commit acks; Repairs counts
	// failure reports answered with a repair plan, RepairFailures those
	// that could not be repaired (evicted session, invalid committed set,
	// infeasible even through the fallback ladder).
	StepAcks       int64 `json:"stepAcks"`
	Repairs        int64 `json:"repairs"`
	RepairFailures int64 `json:"repairFailures"`
	// Latency totals for deriving rates and means externally.
	QueueWaitMSTotal float64 `json:"queueWaitMsTotal"`
	SynthMSTotal     float64 `json:"synthMsTotal"`
	SynthMSMax       float64 `json:"synthMsMax"`
	// Shared plan-cache totals, aggregated across the pool's learning
	// stores (learn.go). PlanCacheHits counts requests served from the
	// verification-first fast path; PlanCacheVerifyFailures counts stale
	// or corrupted entries caught by replay (each fell back to the full
	// search); PlanCacheEvictions counts capacity evictions.
	PlanCacheHits           int64 `json:"planCacheHits"`
	PlanCacheMisses         int64 `json:"planCacheMisses"`
	PlanCacheVerifyFailures int64 `json:"planCacheVerifyFailures"`
	PlanCacheEvictions      int64 `json:"planCacheEvictions"`
	PlanCacheEntries        int   `json:"planCacheEntries"`
	LearnStores             int   `json:"learnStores"`
}

// Stats snapshots the pool counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	tenants := len(p.tenants)
	warm := p.lru.Len()
	var snapBytes int64
	for _, t := range p.tenants {
		snapBytes += int64(len(t.snap))
	}
	p.mu.Unlock()
	cache, stores := p.learn.totals()
	synthNS := p.m.synthHit.SumNanos() + p.m.synthMiss.SumNanos() + p.m.synthRepair.SumNanos()
	return PoolStats{
		PlanCacheHits:           cache.Hits,
		PlanCacheMisses:         cache.Misses,
		PlanCacheVerifyFailures: cache.VerifyFailures,
		PlanCacheEvictions:      cache.Evictions,
		PlanCacheEntries:        cache.Entries,
		LearnStores:             stores,
		Tenants:                 tenants,
		WarmSessions:            warm,
		Workers:                 p.opts.workers(),
		Requests:                p.m.requests.Value(),
		Plans:                   p.m.plans.Value(),
		Infeasible:              p.m.infeasible.Value(),
		Failures:                p.m.failures.Value(),
		BadRequests:             p.m.badRequests.Value(),
		RejectedQueueFull:       p.m.rejectedQueue.Value(),
		DeadlineExpired:         p.m.expired.Value(),
		Canceled:                p.m.canceled.Value(),
		Evictions:               p.m.evictions.Value(),
		SessionRebuilds:         p.m.rebuilds.Value(),
		SnapshotRestores:        p.m.snapshotRestores.Value(),
		ColdRebuilds:            p.m.rebuilds.Value() - p.m.snapshotRestores.Value(),
		SnapshotBytesHeld:       snapBytes,
		SharedArenas:            p.arenas.size(),
		StepAcks:                p.m.acks.Value(),
		Repairs:                 p.m.repairs.Value(),
		RepairFailures:          p.m.repairFailures.Value(),
		QueueWaitMSTotal:        float64(p.m.queueWait.SumNanos()) / 1e6,
		SynthMSTotal:            float64(synthNS) / 1e6,
		SynthMSMax:              float64(maxSynthNanos(&p.m)) / 1e6,
	}
}

// Close drains the pool: new requests (and registrations) are refused
// with ErrPoolClosed immediately, in-flight syntheses run to completion,
// and Close returns once they have — or when ctx expires, in which case
// the stragglers keep their worker slots but the pool accepts nothing
// new. Close is idempotent.
func (p *Pool) Close(ctx context.Context) error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	}
}
